//! Simulator scale harness: steady-state allocation counting and memory
//! growth of the event loop itself, independent of any ML workload.
//!
//! The 10k-peer target of the ROADMAP only holds if the simulator's inner
//! loop stops allocating once warm: the slab event pool recycles envelope
//! slots through the `BinaryHeap`, the engine's action buffer shuttles
//! between callbacks without reallocating, and the online-peer set is a
//! cached bitset. This module drives a churn-heavy gossip application
//! through [`p2psim::engine::Engine`] and measures exactly that:
//!
//! * **allocs/event in steady state** — after a warm-up phase grows every
//!   pool to its high-water mark, a measured phase of the *same* traffic
//!   should allocate (almost) nothing. With the `alloc-count` feature this
//!   is counted through the global allocator; the `scale` bin's `--quick`
//!   mode fails CI when the rate exceeds [`ALLOCS_PER_EVENT_CEILING`].
//! * **peer-memory growth** — engine peak live bytes per peer across
//!   network sizes. Per-peer state is O(1) words (bitset bits, dense stat
//!   columns), so bytes/peer must not grow with n; the quick smoke fails
//!   when the largest network's bytes/peer exceeds the smallest's by more
//!   than [`PER_PEER_GROWTH_SLACK`] (super-linear total growth).
//!
//! The `scale` bin's full mode sweeps the ceiling table (up to 50k peers)
//! into `BENCH_scale.json`; `EXPERIMENTS.md` records a captured run.

use crate::alloc::{self, AllocStats};
use p2psim::churn::{ChurnModel, ChurnTimeline};
use p2psim::engine::{Application, Context, Engine};
use p2psim::message::MessageKind;
use p2psim::physical::{PhysicalConfig, PhysicalNetwork};
use p2psim::time::SimTime;
use p2psim::PeerId;
use std::time::Instant;

/// Steady-state allocations per event above which the quick smoke fails.
/// The warm loop is designed to allocate nothing; the ceiling leaves room
/// for one-off growth (a heap doubling past the warm-up high-water mark)
/// without letting a per-event allocation regression through.
pub const ALLOCS_PER_EVENT_CEILING: f64 = 0.05;

/// Maximum tolerated ratio of bytes/peer between the largest and smallest
/// network in the growth sweep. 1.25 allows fixed overheads to amortize
/// unevenly while still failing any O(n²) (or worse) per-peer structure.
pub const PER_PEER_GROWTH_SLACK: f64 = 1.25;

/// Fixed wire size of one gossip heartbeat (arbitrary, charged to stats).
const HEARTBEAT_BYTES: usize = 64;

/// A minimal gossip application exercising every engine path: timers,
/// fan-out sends to deterministic neighbors, message receipt, and churn
/// (on_start/on_stop). It allocates nothing per event once constructed.
struct GossipApp {
    id: usize,
    num_peers: usize,
    fanout: usize,
    interval: SimTime,
    received: u64,
    sent: u64,
}

impl GossipApp {
    fn new(id: usize, num_peers: usize, fanout: usize, interval: SimTime) -> Self {
        Self {
            id,
            num_peers,
            fanout,
            interval,
            received: 0,
            sent: 0,
        }
    }
}

impl Application for GossipApp {
    type Payload = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.set_timer(self.interval, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _timer: u64) {
        // Deterministic neighbor walk (a fixed stride ring) — no RNG, no
        // allocation, and every peer's fan-out differs so the delivery
        // matrix is exercised broadly.
        for k in 1..=self.fanout {
            let to = (self.id + k * 31 + 1) % self.num_peers;
            if to != self.id {
                ctx.send(
                    PeerId::from(to),
                    MessageKind::Other,
                    HEARTBEAT_BYTES,
                    self.sent,
                );
                self.sent += 1;
            }
        }
        ctx.set_timer(self.interval, 0);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: PeerId, _payload: u64) {
        self.received += 1;
    }
}

/// Builds the gossip engine: `n` peers, churn applied, engine churn-log
/// strings disabled (the one steady-state allocation source the harness is
/// meant to keep honest).
fn build_engine(n: usize, seed: u64) -> Engine<GossipApp> {
    let interval = SimTime::from_millis(500);
    let apps = (0..n).map(|i| GossipApp::new(i, n, 4, interval)).collect();
    let physical = PhysicalNetwork::new(PhysicalConfig {
        seed,
        ..PhysicalConfig::default()
    });
    let mut engine = Engine::new(apps, physical, seed);
    engine.set_churn_logging(false);
    let churn = ChurnModel::Exponential {
        mean_session_secs: 600.0,
        mean_offline_secs: 120.0,
    };
    let timeline = ChurnTimeline::generate(churn, n, SimTime::from_secs(3_600), seed ^ 0x5CA1E);
    engine.apply_churn(&timeline);
    engine
}

/// Result of one steady-state run at a network size.
#[derive(Debug, Clone)]
pub struct SteadyStateRow {
    /// Number of peers simulated.
    pub peers: usize,
    /// Events processed in the warm-up phase.
    pub warmup_events: u64,
    /// Events processed in the measured phase.
    pub measured_events: u64,
    /// Allocator activity during the measured phase (with `alloc-count`).
    pub steady_mem: Option<AllocStats>,
    /// Peak live bytes over build + warm-up + measurement (with
    /// `alloc-count`) — the engine's whole-run working set.
    pub peak_bytes: Option<u64>,
    /// Slab high-water mark: peak simultaneously in-flight events.
    pub in_flight_high_water: usize,
    /// Measured-phase events per wall-clock second.
    pub events_per_sec: f64,
}

impl SteadyStateRow {
    /// Allocation calls per event in the measured (steady-state) phase.
    pub fn allocs_per_event(&self) -> Option<f64> {
        self.steady_mem
            .map(|m| m.allocs as f64 / self.measured_events.max(1) as f64)
    }

    /// Peak live bytes per peer (whole run), when counting is compiled in.
    pub fn bytes_per_peer(&self) -> Option<f64> {
        self.peak_bytes.map(|b| b as f64 / self.peers.max(1) as f64)
    }
}

/// Runs the gossip engine at `n` peers: a warm-up phase of `warmup` events
/// grows every pool to its high-water mark, then a measured phase of
/// `measured` events counts steady-state allocator traffic.
pub fn steady_state(n: usize, warmup: u64, measured: u64, seed: u64) -> SteadyStateRow {
    alloc::reset();
    let mut engine = build_engine(n, seed);
    let horizon = SimTime::from_secs(3_600);
    let warmup_events = engine.run(horizon, warmup);
    let build_peak = alloc::snapshot().map(|m| m.peak_bytes);
    alloc::reset();
    let t = Instant::now();
    let measured_events = engine.run(horizon, measured);
    let secs = t.elapsed().as_secs_f64();
    let steady_mem = alloc::snapshot();
    let peak_bytes = match (build_peak, steady_mem) {
        (Some(b), Some(s)) => Some(b.max(s.peak_bytes)),
        _ => None,
    };
    SteadyStateRow {
        peers: n,
        warmup_events,
        measured_events,
        steady_mem,
        peak_bytes,
        in_flight_high_water: engine.in_flight_high_water_mark(),
        events_per_sec: measured_events as f64 / secs.max(1e-9),
    }
}

/// Renders steady-state rows as the `BENCH_scale.json` document.
pub fn to_json(rows: &[SteadyStateRow], seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"scale\",\n");
    out.push_str("  \"workload\": \"gossip fanout=4, exponential churn (600s/120s)\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"alloc_counting\": {},\n", alloc::enabled()));
    out.push_str(&format!(
        "  \"allocs_per_event_ceiling\": {ALLOCS_PER_EVENT_CEILING},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mem = match (r.allocs_per_event(), r.peak_bytes, r.bytes_per_peer()) {
            (Some(ape), Some(peak), Some(bpp)) => format!(
                ", \"allocs_per_event\": {ape:.4}, \"peak_bytes\": {peak}, \"bytes_per_peer\": {bpp:.1}"
            ),
            _ => String::new(),
        };
        out.push_str(&format!(
            "    {{\"peers\": {}, \"warmup_events\": {}, \"measured_events\": {}, \"in_flight_high_water\": {}, \"events_per_sec\": {:.0}{}}}{}\n",
            r.peers,
            r.warmup_events,
            r.measured_events,
            r.in_flight_high_water,
            r.events_per_sec,
            mem,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`), if
/// readable. Monotone over the process lifetime — meaningful for the last
/// (largest) row of an ascending ceiling sweep.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches(" kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_runs_and_reports() {
        let row = steady_state(64, 5_000, 5_000, 7);
        assert_eq!(row.peers, 64);
        assert!(row.warmup_events > 0);
        assert!(row.measured_events > 0);
        assert!(row.in_flight_high_water > 0);
        assert!(row.events_per_sec > 0.0);
        let json = to_json(&[row], 7);
        crate::scenarios::validate_json(&json).unwrap();
        assert!(json.contains("\"events_per_sec\""));
    }

    #[test]
    fn steady_state_is_allocation_free_when_counted() {
        if !alloc::enabled() {
            return;
        }
        let row = steady_state(256, 20_000, 20_000, 11);
        let ape = row.allocs_per_event().unwrap();
        assert!(
            ape <= ALLOCS_PER_EVENT_CEILING,
            "steady-state allocs/event {ape:.4} above ceiling"
        );
    }

    #[test]
    fn gossip_traffic_actually_flows() {
        let mut engine = build_engine(32, 3);
        engine.run(SimTime::from_secs(60), 200_000);
        let delivered: u64 = (0..32usize)
            .map(|i| engine.app(PeerId::from(i)).received)
            .sum();
        assert!(delivered > 0, "no gossip messages delivered");
    }
}
