//! Simulator scale benchmark: steady-state allocation rate and memory
//! growth of the event loop (see [`bench::scale`]).
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --features alloc-count --bin scale            # ceiling sweep
//! cargo run --release -p bench --features alloc-count --bin scale -- --quick # CI smoke (2k peers)
//! ```
//!
//! The full sweep writes `BENCH_scale.json` at the repository root (quick
//! mode writes `BENCH_scale_quick.json`). Quick mode additionally enforces
//! the two scale invariants and exits nonzero on regression:
//!
//! * steady-state allocs/event at 2k peers must not exceed
//!   [`bench::scale::ALLOCS_PER_EVENT_CEILING`];
//! * whole-run peak bytes per peer at 2k peers must not exceed the 500-peer
//!   figure by more than [`bench::scale::PER_PEER_GROWTH_SLACK`]
//!   (super-linear peer-memory growth).
//!
//! Both invariants need the `alloc-count` feature; without it the bin still
//! runs the sweep (timings and high-water marks) but skips the assertions
//! and says so, so a misconfigured CI step cannot silently pass.

use bench::scale::{
    peak_rss_bytes, steady_state, to_json, ALLOCS_PER_EVENT_CEILING, PER_PEER_GROWTH_SLACK,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = 2010;

    // Ascending sizes: the ceiling sweep ends on the largest network, so the
    // process VmHWM printed at the end reflects it.
    let sweep: &[(usize, u64, u64)] = if quick {
        &[(500, 100_000, 100_000), (2_000, 200_000, 200_000)]
    } else {
        &[
            (1_000, 200_000, 400_000),
            (2_000, 200_000, 400_000),
            (5_000, 400_000, 800_000),
            (10_000, 400_000, 800_000),
            (20_000, 800_000, 1_600_000),
            (50_000, 800_000, 1_600_000),
        ]
    };

    let mut rows = Vec::new();
    for &(n, warmup, measured) in sweep {
        eprintln!("scale: {n} peers ({warmup} warm-up + {measured} measured events)...");
        let row = steady_state(n, warmup, measured, seed);
        eprintln!(
            "  {n:>6} peers | {:>9.0} events/s | in-flight hwm {:>6}{}",
            row.events_per_sec,
            row.in_flight_high_water,
            match (row.allocs_per_event(), row.bytes_per_peer()) {
                (Some(ape), Some(bpp)) => format!(" | {ape:.4} allocs/event | {bpp:.0} bytes/peer"),
                _ => String::new(),
            },
        );
        rows.push(row);
    }

    let json = to_json(&rows, seed);
    let filename = if quick {
        "BENCH_scale_quick.json"
    } else {
        "BENCH_scale.json"
    };
    let path = bench::workspace_root().join(filename);
    std::fs::write(&path, &json).expect("write scale json");
    println!("{json}");
    if let Some(rss) = peak_rss_bytes() {
        eprintln!(
            "peak RSS after largest network ({} peers): {:.1} MiB",
            rows.last().map(|r| r.peers).unwrap_or(0),
            rss as f64 / (1024.0 * 1024.0)
        );
    }
    eprintln!("wrote {}", path.display());

    if quick {
        let small = &rows[0];
        let big = rows.last().expect("sweep is non-empty");
        match (
            big.allocs_per_event(),
            small.bytes_per_peer(),
            big.bytes_per_peer(),
        ) {
            (Some(ape), Some(small_bpp), Some(big_bpp)) => {
                assert!(
                    ape <= ALLOCS_PER_EVENT_CEILING,
                    "steady-state allocs/event at {} peers is {ape:.4}, ceiling {ALLOCS_PER_EVENT_CEILING}",
                    big.peers
                );
                assert!(
                    big_bpp <= small_bpp * PER_PEER_GROWTH_SLACK,
                    "peer-memory growth is super-linear: {:.1} bytes/peer at {} vs {:.1} at {} (slack {PER_PEER_GROWTH_SLACK})",
                    big_bpp,
                    big.peers,
                    small_bpp,
                    small.peers
                );
                eprintln!(
                    "quick smoke OK: {ape:.4} allocs/event, {big_bpp:.0} vs {small_bpp:.0} bytes/peer"
                );
            }
            _ => {
                eprintln!(
                    "quick smoke ran WITHOUT alloc counting (build with --features alloc-count); \
                     allocation and memory-growth assertions were skipped"
                );
            }
        }
    }
}
