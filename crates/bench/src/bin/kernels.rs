//! Kernel microbenchmarks: sparse dot products, CSR row scoring, DCD/SGD
//! training epochs — scalar reference vs the shared-storage/CSR paths.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin kernels            # 200-peer workload
//! cargo run --release -p bench --bin kernels -- --quick # 12-peer (CI smoke)
//! ```
//!
//! Writes `BENCH_kernels.json` to the repository root (quick mode writes
//! `BENCH_kernels_quick.json` so committed numbers are not clobbered by CI).

use bench::kernels::{measure, to_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = 2010;
    let num_users = if quick { 12 } else { 200 };

    eprintln!("measuring kernels on the {num_users}-peer workload...");
    let (rows, docs, avg_nnz) = measure(num_users, seed);
    for r in &rows {
        match (r.fast_ns_per_op, r.speedup()) {
            (Some(f), Some(s)) => eprintln!(
                "  {:<20} {:>10.1} ns/op -> {:>10.1} ns/op (x{:.2})",
                r.op, r.scalar_ns_per_op, f, s
            ),
            _ => eprintln!("  {:<20} {:>10.1} ns/op", r.op, r.scalar_ns_per_op),
        }
    }

    let json = to_json(&rows, docs, avg_nnz, num_users, seed);
    let filename = if quick {
        "BENCH_kernels_quick.json"
    } else {
        "BENCH_kernels.json"
    };
    let root = bench::workspace_root();
    let path = root.join(filename);
    std::fs::write(&path, &json).expect("write kernels json");
    println!("{json}");
    eprintln!("wrote {}", path.display());
}
