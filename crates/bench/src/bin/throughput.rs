//! Throughput benchmark: batched scoring engine vs the scalar reference.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin throughput            # n ∈ {50, 200}
//! cargo run --release -p bench --bin throughput -- --quick # n ∈ {12, 24} (CI smoke)
//! ```
//!
//! Writes `BENCH_throughput.json` to the repository root (or the current
//! directory when not run from the workspace) and prints the table. In
//! `--quick` mode the batched paths are still exercised end to end but the
//! JSON is written to `BENCH_throughput_quick.json` so the committed
//! full-scale numbers are not clobbered by CI.

use bench::throughput::{measure, measure_scale, to_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = 2010;
    let peer_counts: &[usize] = if quick { &[12, 24] } else { &[50, 200] };
    // Scale rows: batched-only, one column per overlay architecture. The
    // smallest size replicates the largest full row so sub-linear memory
    // growth is checkable within one measurement protocol.
    let scale_counts: &[usize] = if quick { &[24] } else { &[200, 2_000, 10_000] };

    let mut rows = Vec::new();
    for &n in peer_counts {
        eprintln!("measuring throughput at {n} peers...");
        let row = measure(n, seed);
        eprintln!(
            "  {n:>4} peers | ingest {:>8.1} docs/s | train {:>7.1} docs/s | one-vs-all x{:.2} | auto-tag {:>7.1} -> {:>8.1} docs/s (x{:.2})",
            row.ingest.docs_per_sec(),
            row.train.docs_per_sec(),
            row.one_vs_all.speedup(),
            row.auto_tag.scalar_docs_per_sec(),
            row.auto_tag.batched_docs_per_sec(),
            row.auto_tag.speedup(),
        );
        rows.push(row);
    }

    let mut scale_rows = Vec::new();
    for &n in scale_counts {
        eprintln!("measuring overlay scale at {n} peers...");
        let row = measure_scale(n, seed);
        for c in &row.columns {
            eprintln!(
                "  {n:>5} peers | {:>10} ({:>7}) | train {:>8.1} docs/s | auto-tag {:>8.1} docs/s | {:>6.2} MB total | f1 {:.3}",
                c.overlay,
                c.protocol,
                c.train.docs_per_sec(),
                c.auto_tag.docs_per_sec(),
                c.total_bytes as f64 / 1e6,
                c.micro_f1,
            );
        }
        scale_rows.push(row);
    }

    let json = to_json(&rows, &scale_rows, seed);
    let filename = if quick {
        "BENCH_throughput_quick.json"
    } else {
        "BENCH_throughput.json"
    };
    // Prefer the workspace root (where CHANGES.md lives); fall back to cwd.
    let root = bench::workspace_root();
    let path = root.join(filename);
    std::fs::write(&path, &json).expect("write throughput json");
    println!("{json}");
    eprintln!("wrote {}", path.display());

    if quick {
        // CI smoke: the point is exercising the batched paths end to end
        // (measure() already asserts both backends produce identical
        // micro-F1). The quick workloads finish in milliseconds, so the
        // measured ratio is noisy — only catch a catastrophic regression,
        // not a few percent of scheduler jitter.
        for row in &rows {
            assert!(
                row.auto_tag.speedup() > 0.5,
                "batched auto-tag catastrophically slower than scalar at {} peers: x{:.2}",
                row.peers,
                row.auto_tag.speedup()
            );
        }
        // Regression guard for the CSR-native training path: on the largest
        // quick workload the shared-context one-vs-all train must not fall
        // back below the legacy clone-per-tag loop. (At full scale the
        // committed BENCH_throughput.json shows ≥ 1.5x; the quick workload
        // is smaller and noisier, so the guard is the break-even line.)
        let last = rows.last().expect("at least one row");
        assert!(
            last.one_vs_all.speedup() >= 1.0,
            "CSR one-vs-all train regressed below the scalar reference at {} peers: x{:.2}",
            last.peers,
            last.one_vs_all.speedup()
        );
    }
}
