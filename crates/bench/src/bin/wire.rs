//! Wire-codec benchmark: measured frame bytes vs the legacy `wire_size()`
//! estimates, plus the accuracy cost of the quantized/pruned modes.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin wire            # 200-peer workload
//! cargo run --release -p bench --bin wire -- --quick # 12-peer (CI smoke)
//! ```
//!
//! Writes `BENCH_wire.json` to the repository root (quick mode writes
//! `BENCH_wire_quick.json` so committed numbers are not clobbered by CI).
//!
//! Exit status is non-zero when the codec violates its contract: any payload
//! fails the round-trip identity check, the lossless frames exceed the
//! legacy estimate by more than 10 % on any payload class, or the lossless
//! end-to-end run changes macro-F1 at all.

use bench::wire::{measure, to_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = 2010;
    let num_users = if quick { 12 } else { 200 };

    eprintln!("measuring wire codec on the {num_users}-peer workload...");
    let report = measure(num_users, seed);
    for r in &report.payloads {
        eprintln!(
            "  {:<14} {:>4} payloads  est {:>9} B  measured {:>9} B  (x{:.2})  enc {:>7.0} ns  dec {:>7.0} ns",
            r.payload, r.count, r.estimated_bytes, r.measured_bytes, r.ratio(), r.encode_ns, r.decode_ns
        );
    }
    for m in &report.modes {
        eprintln!(
            "  mode {:<12} model bytes {:>9}  macro-F1 {:.4}",
            m.mode, m.model_bytes, m.macro_f1
        );
    }

    let json = to_json(&report, seed);
    let filename = if quick {
        "BENCH_wire_quick.json"
    } else {
        "BENCH_wire.json"
    };
    let root = bench::workspace_root();
    let path = root.join(filename);
    std::fs::write(&path, &json).expect("write wire json");
    println!("{json}");
    eprintln!("wrote {}", path.display());

    // Contract gates (CI smoke fails the build on violation).
    let mut failures = Vec::new();
    if !report.round_trip_ok {
        failures.push("round-trip decode mismatch".to_string());
    }
    for r in &report.payloads {
        if r.measured_bytes as f64 > r.estimated_bytes as f64 * 1.10 {
            failures.push(format!(
                "lossless {} frames exceed the legacy estimate by >10% ({} vs {})",
                r.payload, r.measured_bytes, r.estimated_bytes
            ));
        }
    }
    let lossless_delta = report.f1_delta("lossless");
    if lossless_delta != Some(0.0) {
        failures.push(format!(
            "lossless wire must not change macro-F1 (delta {lossless_delta:?})"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("WIRE GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "wire gates passed: lossless model compression x{:.2}, zero F1 delta",
        report.lossless_model_ratio()
    );
}
