//! Session-throughput benchmark: incremental vs full-retrain epochs.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin session            # n ∈ {50, 200} x 10 epochs + 10k x 3
//! cargo run --release -p bench --bin session -- --quick # n ∈ {10}, 3 epochs (CI smoke)
//! ```
//!
//! Build with `--features alloc-count` to record `peak_bytes` per mode (the
//! scale acceptance row: 10k-peer peak must grow sub-linearly vs 200 peers).
//!
//! Writes `BENCH_session.json` to the repository root (or
//! `BENCH_session_quick.json` in `--quick` mode so the committed full-scale
//! numbers are not clobbered by CI).

use bench::session::{measure, to_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = 2010;
    // (peers, epochs): the 10k scale row replays fewer epochs — the point is
    // the per-network working set (`peak_bytes`) and that both training modes
    // still complete at that size, not a long accuracy trajectory.
    let sweep: &[(usize, usize)] = if quick {
        &[(10, 3)]
    } else {
        &[(50, 10), (200, 10), (10_000, 3)]
    };

    let mut rows = Vec::new();
    for &(n, epochs) in sweep {
        eprintln!("replaying {epochs}-epoch session at {n} peers...");
        let row = measure(n, epochs, seed);
        eprintln!(
            "  {n:>5} peers | train: incremental {:>7.1} epochs/s vs full {:>7.1} epochs/s (x{:.2}) | whole epoch x{:.2} | macro {:.3} vs {:.3}{}",
            row.incremental.train_epochs_per_sec(),
            row.full.train_epochs_per_sec(),
            row.train_speedup(),
            row.total_speedup(),
            row.incremental.outcome.final_macro_f1(),
            row.full.outcome.final_macro_f1(),
            row.incremental
                .peak_bytes
                .map(|b| format!(" | peak {:.1} MB", b as f64 / 1e6))
                .unwrap_or_default(),
        );
        rows.push(row);
    }

    let json = to_json(&rows, seed);
    let filename = if quick {
        "BENCH_session_quick.json"
    } else {
        "BENCH_session.json"
    };
    let root = bench::workspace_root();
    let path = root.join(filename);
    std::fs::write(&path, &json).expect("write session json");
    println!("{json}");
    eprintln!("wrote {}", path.display());

    for row in &rows {
        // The incremental path must stay within 5% of the full-retrain
        // reference on the same timeline (the session layer's accuracy
        // contract, also asserted — at unit scale — by the regression suite).
        let (inc, full) = (
            row.incremental.outcome.final_macro_f1(),
            row.full.outcome.final_macro_f1(),
        );
        assert!(
            inc >= full - 0.05 * full,
            "incremental macro-F1 {inc} more than 5% below reference {full} at {} peers",
            row.peers
        );
        if quick {
            // CI smoke: the timelines are tiny and the timings noisy — only
            // catch a catastrophic slowdown of the incremental path.
            assert!(
                row.total_speedup() > 0.3,
                "incremental catastrophically slower than full retrain at {} peers: x{:.2}",
                row.peers,
                row.total_speedup()
            );
        }
    }
    if !quick {
        // At scale the incremental path must actually pay off where the two
        // modes differ: absorbing an epoch's new examples must be at least
        // twice as fast as the from-scratch retrain. (Whole-epoch time is
        // dominated by auto-tagging, which is identical work in both modes.)
        // The 200-peer row carries this guard: its 10-epoch timeline gives
        // the warm-start path enough epochs past the (identical) cold epoch 0
        // for the ratio to be meaningful.
        let at_scale = rows
            .iter()
            .find(|r| r.peers == 200)
            .expect("200-peer row measured");
        assert!(
            at_scale.train_speedup() >= 2.0,
            "incremental training epochs not ≥2x faster than full retrain at {} peers: x{:.2}",
            at_scale.peers,
            at_scale.train_speedup()
        );
        // The 10k scale row replays few epochs (epoch 0 is an identical cold
        // train in both modes), so only require the warm path not to lose.
        let ceiling = rows.last().expect("rows measured");
        assert!(
            ceiling.train_speedup() >= 1.0,
            "incremental training slower than full retrain at {} peers: x{:.2}",
            ceiling.peers,
            ceiling.train_speedup()
        );
    }
}
