//! Chaos regime grid: four protocols × deterministic fault regimes.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin chaos            # full grid (6 regimes)
//! cargo run --release -p bench --bin chaos -- --quick # baseline + loss-10 (CI smoke)
//! ```
//!
//! Writes `BENCH_chaos.json` to the repository root (or
//! `BENCH_chaos_quick.json` in `--quick` mode so the committed full-scale
//! numbers are not clobbered by CI), then asserts the robustness orderings
//! the fault layer is designed to guard: the document validates as JSON, no
//! protocol panics or collapses under any regime, fault counters are really
//! nonzero in the faulty regimes, and collaborative tagging keeps its edge
//! over isolated per-peer learning at 10–20 % loss.

use bench::chaos::{measure_regime, standard_regimes, to_json, ChaosRow};
use bench::scenarios::validate_json;
use bench::workload::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(2010);
    let all = standard_regimes();
    let (regimes, num_users, scale, epochs) = if quick {
        let picks: Vec<_> = all
            .into_iter()
            .filter(|r| r.name == "baseline" || r.name == "loss-10")
            .collect();
        (picks, 10, Scale::Small, 3)
    } else {
        (all, 16, Scale::Demo, 5)
    };

    let mut rows = Vec::new();
    for regime in &regimes {
        eprintln!("replaying regime '{}'...", regime.name);
        let row = measure_regime(regime, num_users, scale, epochs, seed);
        for c in &row.cells {
            eprintln!(
                "  {:<12} | micro {:.3} macro {:.3} | failed {:>4} | drop {:>5} corrupt {:>4} rtx {:>5} resync {:>3} | {:>9} B | {:>6.2}s",
                c.protocol,
                c.micro_f1,
                c.macro_f1,
                c.auto_failed,
                c.faults.total_fault_drops(),
                c.faults.corrupted,
                c.faults.retransmits,
                c.faults.resyncs,
                c.bytes,
                c.secs,
            );
        }
        rows.push(row);
    }

    let json = to_json(&rows, epochs, seed);
    let filename = if quick {
        "BENCH_chaos_quick.json"
    } else {
        "BENCH_chaos.json"
    };
    let root = bench::workspace_root();
    let path = root.join(filename);
    std::fs::write(&path, &json).expect("write chaos json");
    println!("{json}");
    eprintln!("wrote {}", path.display());

    // The document must be machine-readable.
    validate_json(&json).unwrap_or_else(|e| panic!("{filename} is not valid JSON: {e}"));

    let cell = |row: &ChaosRow, protocol: &str| {
        row.cell(protocol)
            .unwrap_or_else(|| panic!("{} missing from regime {}", protocol, row.regime.name))
            .clone()
    };
    for row in &rows {
        for c in &row.cells {
            // No regime may collapse any protocol outright (a panic would
            // have aborted the run already; this guards silent collapse).
            assert!(
                c.macro_f1 > 0.1,
                "{} macro-F1 collapsed to {:.3} under regime '{}'",
                c.protocol,
                c.macro_f1,
                row.regime.name
            );
        }
        if row.regime.loss > 0.0 {
            // The plan was really active: the network dropped or damaged
            // frames for the protocols that communicate.
            let pace = cell(row, "pace");
            assert!(
                pace.faults.total_fault_drops() + pace.faults.corrupted > 0,
                "no fault activity under regime '{}'",
                row.regime.name
            );
            // The paper's claim under fire: collaborative tagging (the best
            // of the two P2P protocols) must not fall behind isolated
            // per-peer learning just because the network is lossy.
            let collaborative = pace.macro_f1.max(cell(row, "cempar").macro_f1);
            let local = cell(row, "local-only").macro_f1;
            assert!(
                collaborative >= local,
                "collaborative macro-F1 {:.3} below local-only {:.3} under regime '{}'",
                collaborative,
                local,
                row.regime.name
            );
        }
    }
}
