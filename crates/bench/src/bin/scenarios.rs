//! Scenario regression matrix: four protocols × adversarial workloads.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin scenarios            # full matrix (6 scenarios)
//! cargo run --release -p bench --bin scenarios -- --quick # benign + zipf-heavy (CI smoke)
//! ```
//!
//! Writes `BENCH_scenarios.json` to the repository root (or
//! `BENCH_scenarios_quick.json` in `--quick` mode so the committed full-scale
//! numbers are not clobbered by CI), then asserts the orderings the suite is
//! designed to guard: the document validates as JSON, no scenario collapses
//! the benign baseline, and under skewed regimes the collaborative protocol
//! keeps its tail-tag edge over isolated per-peer learning.

use bench::scenarios::{measure_scenario, to_json, validate_json, ScenarioRow};
use bench::workload::{Scale, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(2010);
    let (scenarios, num_users, scale, epochs) = if quick {
        let picks = ["benign", "zipf-heavy"];
        let scenarios: Vec<ScenarioSpec> = picks
            .iter()
            .map(|n| ScenarioSpec::named(n).expect("known scenario"))
            .collect();
        (scenarios, 10, Scale::Small, 3)
    } else {
        (ScenarioSpec::matrix(), 16, Scale::Demo, 5)
    };

    let mut rows = Vec::new();
    for scenario in &scenarios {
        eprintln!("replaying scenario '{}'...", scenario.name);
        let row = measure_scenario(scenario, num_users, scale, epochs, seed);
        for c in &row.cells {
            eprintln!(
                "  {:<12} | micro {:.3} macro {:.3} | head {:.3} tail {:.3} | cold {:.3} | {:>9} B | {:>6.2}s",
                c.protocol,
                c.micro_f1,
                c.macro_f1,
                c.head_macro_f1,
                c.tail_macro_f1,
                c.cold_start_macro_f1,
                c.bytes,
                c.secs,
            );
        }
        rows.push(row);
    }

    let json = to_json(&rows, epochs, seed);
    let filename = if quick {
        "BENCH_scenarios_quick.json"
    } else {
        "BENCH_scenarios.json"
    };
    let root = bench::workspace_root();
    let path = root.join(filename);
    std::fs::write(&path, &json).expect("write scenarios json");
    println!("{json}");
    eprintln!("wrote {}", path.display());

    // The document must be machine-readable.
    validate_json(&json).unwrap_or_else(|e| panic!("{filename} is not valid JSON: {e}"));

    let cell = |row: &ScenarioRow, protocol: &str| {
        row.cell(protocol)
            .unwrap_or_else(|| panic!("{} missing from scenario {}", protocol, row.scenario.name))
            .clone()
    };
    let benign = rows
        .iter()
        .find(|r| r.scenario.name == "benign")
        .expect("benign scenario in the matrix");
    let benign_floor = cell(benign, "pace").macro_f1;
    for row in &rows {
        // No scenario may collapse the collaborative protocol outright.
        let pace = cell(row, "pace");
        assert!(
            pace.macro_f1 > 0.25,
            "pace macro-F1 collapsed to {:.3} under scenario '{}'",
            pace.macro_f1,
            row.scenario.name
        );
        if row.scenario.is_skewed() {
            // The paper's claim, sharpened: under skew, collaboration must
            // hold its edge over isolated per-peer learning exactly where
            // isolation hurts — the tail of the tag-popularity ranking. The
            // cascade protocol (CEMPaR) pools every peer's support vectors
            // and carries the claim; PACE's summarized exchange trades some
            // of that tail coverage for cheaper communication, so the best
            // collaborative cell is what is pinned.
            let cempar = cell(row, "cempar");
            let collaborative = cempar.tail_macro_f1.max(pace.tail_macro_f1);
            let local = cell(row, "local-only");
            assert!(
                collaborative >= local.tail_macro_f1,
                "collaborative tail-tag F1 {:.3} below local-only {:.3} under scenario '{}'",
                collaborative,
                local.tail_macro_f1,
                row.scenario.name
            );
        }
    }
    // The benign baseline itself must stay healthy (guards against the skew
    // knobs leaking into the disabled-path RNG streams).
    assert!(
        benign_floor > 0.4,
        "benign pace macro-F1 degraded to {benign_floor:.3}"
    );
}
