//! Experiment runner: regenerates every evaluation table of the reproduction.
//!
//! Usage:
//! ```text
//! cargo run --release -p bench --bin experiments            # run everything
//! cargo run --release -p bench --bin experiments -- e1 e4   # run a subset
//! cargo run --release -p bench --bin experiments -- --quick # smaller scale
//! ```

use bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let wants = |id: &str| selected.is_empty() || selected.iter().any(|s| s == &id.to_lowercase());

    // Scales: the demo runs "more than 500 peers" for the interactive part;
    // the reproduction defaults keep every table under a few minutes of CPU.
    let (e1_users, e2_peers, e3_users, e4_users, e5_peers, misc_users): (
        usize,
        Vec<usize>,
        usize,
        usize,
        usize,
        usize,
    ) = if quick {
        (8, vec![8, 16, 32], 8, 12, 128, 8)
    } else {
        (24, vec![16, 32, 64, 128], 24, 24, 512, 16)
    };
    let seed = 2010;

    // Tables are printed as soon as each experiment finishes so that partial
    // results survive an interrupted run.
    let emit = |table: exp::Table| println!("{}", table.render());
    if wants("e1") {
        emit(exp::e1_accuracy(e1_users, seed));
    }
    if wants("e2") {
        emit(exp::e2_scalability(&e2_peers, seed));
    }
    if wants("e3") {
        emit(exp::e3_communication(e3_users, seed));
    }
    if wants("e4") {
        emit(exp::e4_churn(e4_users, seed));
    }
    if wants("e5") {
        emit(exp::e5_topology(e5_peers, 200, seed));
    }
    if wants("e6") {
        emit(exp::e6_data_distribution(misc_users, seed));
    }
    if wants("e7") {
        emit(exp::e7_training_fraction(misc_users, seed));
    }
    if wants("e8") {
        emit(exp::e8_refinement(misc_users, seed));
    }
    if wants("e9") {
        emit(exp::e9_tag_cloud(misc_users, seed));
    }
    if wants("a1") {
        emit(exp::a1_pace_ablation(misc_users, seed));
    }
    if wants("a2") {
        emit(exp::a2_cempar_ablation(misc_users, seed));
    }
}
