//! Scenario regression matrix: the four protocols replayed over the
//! adversarial-workload scenarios of [`crate::workload::ScenarioSpec`].
//!
//! Each cell of the matrix streams one scenario's corpus through
//! [`doctagger::SessionDriver`] with one protocol and records the stratified
//! quality views the skewed regimes are designed to separate: overall
//! micro/macro-F1, head vs tail macro-F1 (tags split by ground-truth
//! popularity rank), and the pooled F1 of the cold-start peers (the quartile
//! with the fewest manual taggings). The paper's central claim — collaborative
//! tagging beats isolated per-peer learning — should *widen* on tail tags and
//! cold-start peers under skew, and that ordering is what `tests/scenarios.rs`
//! and the `scenarios` bin pin.
//!
//! The binary writes `BENCH_scenarios.json` at the repository root;
//! `EXPERIMENTS.md` §C1 records a captured run.

use crate::workload::{Scale, ScenarioSpec};
use dataset::CorpusGenerator;
use doctagger::SessionDriver;
use std::time::Instant;

/// Fraction of positive-support tags counted as the "head" of the popularity
/// ranking; the rest are the tail.
pub const HEAD_FRACTION: f64 = 0.3;

/// Fraction of peers (those with the fewest manual taggings) pooled into the
/// cold-start stratum.
pub const COLD_START_FRACTION: f64 = 0.25;

/// The overlay architecture a protocol routes over, as a column label: the
/// flat-DHT ensemble (PACE) rides the Chord ring, the cascade (CEMPaR) a
/// super-peer hierarchy, the centralized reference a star, and local-only
/// nothing at all. The overlay-churn regime exists to separate the first two.
pub fn overlay_of(protocol: &str) -> &'static str {
    match protocol {
        "pace" => "chord-dht",
        "cempar" => "super-peer",
        "centralized" => "star",
        _ => "none",
    }
}

/// One protocol's stratified quality numbers on one scenario.
#[derive(Debug, Clone)]
pub struct ProtocolCell {
    /// Protocol name.
    pub protocol: String,
    /// Overlay architecture column label (see [`overlay_of`]).
    pub overlay: &'static str,
    /// Overall micro-averaged F1 over every auto-tag request.
    pub micro_f1: f64,
    /// Overall macro-averaged F1.
    pub macro_f1: f64,
    /// Macro-F1 over the head (most popular) tags.
    pub head_macro_f1: f64,
    /// Macro-F1 over the tail (rarest positive-support) tags.
    pub tail_macro_f1: f64,
    /// Number of head tags in the split.
    pub head_tags: usize,
    /// Number of tail tags in the split.
    pub tail_tags: usize,
    /// Macro-F1 pooled over the cold-start peers.
    pub cold_start_macro_f1: f64,
    /// Micro-F1 pooled over the cold-start peers.
    pub cold_start_micro_f1: f64,
    /// Total bytes exchanged over the session.
    pub bytes: u64,
    /// Wall-clock seconds for the session replay.
    pub secs: f64,
}

/// One scenario's row of the matrix: the scenario plus one cell per protocol.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// The scenario replayed.
    pub scenario: ScenarioSpec,
    /// Corpus size in documents.
    pub documents: usize,
    /// Number of peers (= users).
    pub peers: usize,
    /// Number of peers pooled into the cold-start stratum.
    pub cold_peers: usize,
    /// One cell per protocol, in [`crate::workload::standard_protocols`] order.
    pub cells: Vec<ProtocolCell>,
}

impl ScenarioRow {
    /// The cell of a protocol by name, if present.
    pub fn cell(&self, protocol: &str) -> Option<&ProtocolCell> {
        self.cells.iter().find(|c| c.protocol == protocol)
    }
}

/// Number of cold-start peers pooled at a network size (≥ 1).
pub fn cold_peer_count(num_peers: usize) -> usize {
    ((num_peers as f64 * COLD_START_FRACTION).ceil() as usize).clamp(1, num_peers.max(1))
}

/// Replays one scenario with every standard protocol and returns its row.
pub fn measure_scenario(
    scenario: &ScenarioSpec,
    num_users: usize,
    scale: Scale,
    epochs: usize,
    seed: u64,
) -> ScenarioRow {
    let corpus = CorpusGenerator::new(scenario.corpus_spec(num_users, scale, seed)).generate();
    let cold_peers = cold_peer_count(corpus.num_users());
    let cells = crate::workload::standard_protocols(corpus.num_users())
        .into_iter()
        .map(|protocol| {
            let name = protocol.name().to_string();
            let mut driver =
                SessionDriver::new(protocol, scenario.session_config(epochs, seed), &corpus);
            let t = Instant::now();
            let outcome = driver.run().expect("session completes");
            let secs = t.elapsed().as_secs_f64();
            let split = outcome.final_metrics.head_tail(HEAD_FRACTION);
            let cold = outcome.cold_start_metrics(cold_peers);
            ProtocolCell {
                overlay: overlay_of(&name),
                protocol: name,
                micro_f1: outcome.final_micro_f1(),
                macro_f1: outcome.final_macro_f1(),
                head_macro_f1: split.head_macro_f1,
                tail_macro_f1: split.tail_macro_f1,
                head_tags: split.head_tags.len(),
                tail_tags: split.tail_tags.len(),
                cold_start_macro_f1: cold.macro_f1(),
                cold_start_micro_f1: cold.micro_f1(),
                bytes: driver.system().network_stats().total_bytes(),
                secs,
            }
        })
        .collect();
    ScenarioRow {
        scenario: scenario.clone(),
        documents: corpus.len(),
        peers: corpus.num_users(),
        cold_peers,
        cells,
    }
}

/// Runs a list of scenarios (all four protocols each) and returns the matrix.
pub fn measure(
    scenarios: &[ScenarioSpec],
    num_users: usize,
    scale: Scale,
    epochs: usize,
    seed: u64,
) -> Vec<ScenarioRow> {
    scenarios
        .iter()
        .map(|s| measure_scenario(s, num_users, scale, epochs, seed))
        .collect()
}

/// Renders the matrix as the `BENCH_scenarios.json` document.
pub fn to_json(rows: &[ScenarioRow], epochs: usize, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"scenarios\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"epochs\": {epochs},\n"));
    out.push_str(&format!("  \"head_fraction\": {HEAD_FRACTION},\n"));
    out.push_str(&format!(
        "  \"cold_start_fraction\": {COLD_START_FRACTION},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"scenario\": \"{}\",\n", r.scenario.name));
        out.push_str(&format!(
            "      \"description\": \"{}\",\n",
            r.scenario.description
        ));
        out.push_str(&format!("      \"skewed\": {},\n", r.scenario.is_skewed()));
        out.push_str(&format!("      \"documents\": {},\n", r.documents));
        out.push_str(&format!("      \"peers\": {},\n", r.peers));
        out.push_str(&format!("      \"cold_peers\": {},\n", r.cold_peers));
        out.push_str("      \"protocols\": [\n");
        for (j, c) in r.cells.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"protocol\": \"{}\", \"overlay\": \"{}\", \"micro_f1\": {:.4}, \"macro_f1\": {:.4}, \"head_macro_f1\": {:.4}, \"tail_macro_f1\": {:.4}, \"head_tags\": {}, \"tail_tags\": {}, \"cold_start_macro_f1\": {:.4}, \"cold_start_micro_f1\": {:.4}, \"bytes\": {}, \"secs\": {:.3}}}{}\n",
                c.protocol,
                c.overlay,
                c.micro_f1,
                c.macro_f1,
                c.head_macro_f1,
                c.tail_macro_f1,
                c.head_tags,
                c.tail_tags,
                c.cold_start_macro_f1,
                c.cold_start_micro_f1,
                c.bytes,
                c.secs,
                if j + 1 < r.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates that a string is well-formed JSON (objects, arrays, strings,
/// numbers, booleans, null). The workspace vendors no JSON crate, so the
/// `BENCH_*.json` documents are rendered by hand; this minimal
/// recursive-descent checker is what the CI smoke step uses to fail the build
/// if a hand-rolled writer ever emits a malformed document.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos:?}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos:?}"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos:?}"));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos:?}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos:?}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(|_| ())
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_scenario_fills_every_protocol_cell() {
        let scenario = ScenarioSpec::named("zipf-heavy").unwrap();
        let row = measure_scenario(&scenario, 6, Scale::Small, 2, 11);
        assert_eq!(row.cells.len(), 4);
        assert_eq!(row.peers, 6);
        assert_eq!(row.cold_peers, cold_peer_count(6));
        for cell in &row.cells {
            assert!(cell.micro_f1 > 0.0, "{}", cell.protocol);
            assert!(cell.head_tags >= 1);
            assert!((0.0..=1.0).contains(&cell.tail_macro_f1));
            assert!((0.0..=1.0).contains(&cell.cold_start_macro_f1));
        }
        // Collaborative protocols move bytes; local-only moves none.
        assert!(row.cell("pace").unwrap().bytes > 0);
        assert_eq!(row.cell("local-only").unwrap().bytes, 0);
        let json = to_json(&[row], 2, 11);
        validate_json(&json).unwrap();
        assert!(json.contains("\"tail_macro_f1\""));
        assert!(json.contains("\"cold_start_macro_f1\""));
    }

    #[test]
    fn overlay_churn_regime_labels_overlay_columns() {
        let scenario = ScenarioSpec::named("overlay-churn").unwrap();
        assert!(!matches!(
            scenario.session_config(2, 5).churn,
            p2psim::churn::ChurnModel::None
        ));
        let row = measure_scenario(&scenario, 6, Scale::Small, 2, 5);
        assert_eq!(row.cell("pace").unwrap().overlay, "chord-dht");
        assert_eq!(row.cell("cempar").unwrap().overlay, "super-peer");
        assert_eq!(row.cell("local-only").unwrap().overlay, "none");
        for cell in &row.cells {
            assert!(
                cell.micro_f1 > 0.0,
                "{} collapsed under churn",
                cell.protocol
            );
        }
        let json = to_json(&[row], 2, 5);
        validate_json(&json).unwrap();
        assert!(json.contains("\"overlay\": \"chord-dht\""));
        assert!(json.contains("\"overlay\": \"super-peer\""));
    }

    #[test]
    fn json_validator_accepts_well_formed_and_rejects_malformed() {
        validate_json("{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": null}, \"d\": \"x\\\"y\"}").unwrap();
        validate_json("[]").unwrap();
        validate_json("  true  ").unwrap();
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("{\"a\": 1,}").is_err());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{\"a\": 1} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{'a': 1}").is_err());
    }
}
