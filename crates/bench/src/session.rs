//! Session-throughput benchmark: warm-start incremental training vs the
//! full-retrain reference over the same streaming timeline.
//!
//! Both modes replay an identical arrival/refinement/churn timeline through
//! [`doctagger::SessionDriver`] with PACE as the protocol under test; they
//! differ only in how each epoch's manual arrivals enter the models —
//! [`p2pclassify::P2PTagClassifier::train_incremental`] (a few SGD passes
//! from the stored per-peer weights, retraining only the touched peers) vs a
//! from-scratch [`p2pclassify::P2PTagClassifier::train`] on the cumulative
//! manual set. The session regression suite in `doctagger::session` pins the
//! accuracy side (incremental within 5 % of the reference); this benchmark
//! measures the throughput side: epochs per second and the per-epoch accuracy
//! trajectory, at several network sizes.
//!
//! The binary writes `BENCH_session.json` at the repository root;
//! `EXPERIMENTS.md` records a captured run.

use crate::alloc;
use dataset::{Corpus, CorpusGenerator, CorpusSpec};
use doctagger::{ProtocolKind, SessionConfig, SessionOutcome};
use p2psim::churn::ChurnModel;
use std::sync::Arc;
use std::time::Instant;

/// One mode's timing + quality numbers.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// Wall-clock seconds for the whole session replay.
    pub secs: f64,
    /// Peak live heap bytes over the whole replay (driver build + every
    /// epoch), when the `alloc-count` feature is compiled in. The shared
    /// corpus is excluded (built before the measurement window), so this is
    /// the per-network working set the scale claims are about.
    pub peak_bytes: Option<u64>,
    /// The session outcome (per-epoch trajectory + final metrics).
    pub outcome: SessionOutcome,
}

impl ModeResult {
    /// Epochs replayed per wall-clock second (whole epoch: learn + refine +
    /// auto-tag; the tagging side is identical work in both modes).
    pub fn epochs_per_sec(&self) -> f64 {
        self.outcome.epochs.len() as f64 / self.secs.max(1e-9)
    }

    /// Wall-clock seconds spent in the learning phase across all epochs —
    /// the phase the two modes actually differ in.
    pub fn train_secs(&self) -> f64 {
        self.outcome.total_learn_secs()
    }

    /// Training epochs per second (learning phase only).
    pub fn train_epochs_per_sec(&self) -> f64 {
        self.outcome.epochs.len() as f64 / self.train_secs().max(1e-9)
    }
}

/// Session measurements for one network size.
#[derive(Debug, Clone)]
pub struct SessionRow {
    /// Number of peers (= users).
    pub peers: usize,
    /// Corpus size in documents.
    pub documents: usize,
    /// Epochs replayed.
    pub epochs: usize,
    /// Warm-start incremental mode.
    pub incremental: ModeResult,
    /// Full-retrain reference mode.
    pub full: ModeResult,
}

impl SessionRow {
    /// Incremental-over-full whole-epoch throughput ratio. Auto-tagging
    /// dominates an epoch and is identical work in both modes, so this
    /// saturates well below the training-phase win.
    pub fn total_speedup(&self) -> f64 {
        self.full.secs / self.incremental.secs.max(1e-9)
    }

    /// Incremental-over-full *training-epoch* throughput ratio — the headline
    /// number: how much faster the warm-start path absorbs an epoch's new
    /// examples than a from-scratch retrain on the cumulative set.
    pub fn train_speedup(&self) -> f64 {
        self.full.train_secs() / self.incremental.train_secs().max(1e-9)
    }
}

/// The streaming workload for `num_users` peers: the tag-heavy throughput
/// corpus shape with interest locality, so warm refits touch realistic
/// per-tag model counts.
pub fn session_spec(num_users: usize, seed: u64) -> CorpusSpec {
    CorpusSpec {
        num_tags: 24,
        num_users,
        min_docs_per_user: 12,
        max_docs_per_user: 20,
        words_per_doc: 40,
        words_per_tag: 25,
        background_vocab: 300,
        interests_per_user: 5,
        seed,
        ..CorpusSpec::default()
    }
}

fn session_config(epochs: usize, incremental: bool, seed: u64) -> SessionConfig {
    SessionConfig {
        epochs,
        epoch_secs: 600.0,
        churn: ChurnModel::Exponential {
            mean_session_secs: 3_000.0,
            mean_offline_secs: 300.0,
        },
        incremental,
        seed,
        ..SessionConfig::default()
    }
}

fn run_mode(corpus: Arc<Corpus>, epochs: usize, incremental: bool, seed: u64) -> ModeResult {
    alloc::reset();
    let mut driver = doctagger::SessionDriver::new_shared(
        ProtocolKind::pace(),
        session_config(epochs, incremental, seed),
        corpus,
    );
    let t = Instant::now();
    let outcome = driver.run().expect("session completes");
    let secs = t.elapsed().as_secs_f64();
    ModeResult {
        secs,
        peak_bytes: alloc::snapshot().map(|m| m.peak_bytes),
        outcome,
    }
}

/// Runs the session scenario for one network size: both modes replay the
/// identical timeline (sharing one corpus behind an `Arc`); only the
/// training path differs.
pub fn measure(num_users: usize, epochs: usize, seed: u64) -> SessionRow {
    let corpus = Arc::new(CorpusGenerator::new(session_spec(num_users, seed)).generate());
    let incremental = run_mode(corpus.clone(), epochs, true, seed);
    let full = run_mode(corpus.clone(), epochs, false, seed);
    SessionRow {
        peers: corpus.num_users(),
        documents: corpus.len(),
        epochs,
        incremental,
        full,
    }
}

/// Renders the rows as the `BENCH_session.json` document.
pub fn to_json(rows: &[SessionRow], seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"session\",\n");
    out.push_str("  \"protocol\": \"pace\",\n");
    out.push_str("  \"churn\": \"exponential(session=3000s, offline=300s)\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        parallel::effective_threads(usize::MAX)
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"peers\": {},\n", r.peers));
        out.push_str(&format!("      \"documents\": {},\n", r.documents));
        out.push_str(&format!("      \"epochs\": {},\n", r.epochs));
        let mode = |name: &str, m: &ModeResult| {
            let peak = m
                .peak_bytes
                .map(|b| format!(", \"peak_bytes\": {b}"))
                .unwrap_or_default();
            format!(
                "      \"{name}\": {{\"secs\": {:.3}, \"epochs_per_sec\": {:.2}, \"train_secs\": {:.3}, \"train_epochs_per_sec\": {:.2}, \"final_micro_f1\": {:.4}, \"final_macro_f1\": {:.4}, \"refinements\": {}{peak}}},\n",
                m.secs,
                m.epochs_per_sec(),
                m.train_secs(),
                m.train_epochs_per_sec(),
                m.outcome.final_micro_f1(),
                m.outcome.final_macro_f1(),
                m.outcome.total_refinements,
            )
        };
        out.push_str(&mode("incremental", &r.incremental));
        out.push_str(&mode("full_retrain", &r.full));
        out.push_str(&format!(
            "      \"train_speedup\": {:.2},\n",
            r.train_speedup()
        ));
        out.push_str(&format!(
            "      \"total_speedup\": {:.2},\n",
            r.total_speedup()
        ));
        out.push_str("      \"trajectory\": [\n");
        let n = r.incremental.outcome.epochs.len();
        for e in 0..n {
            let inc = &r.incremental.outcome.epochs[e];
            let full = &r.full.outcome.epochs[e];
            out.push_str(&format!(
                "        {{\"epoch\": {e}, \"availability\": {:.3}, \"auto_requested\": {}, \"incremental_micro_f1\": {:.4}, \"full_micro_f1\": {:.4}, \"incremental_macro_f1\": {:.4}, \"full_macro_f1\": {:.4}}}{}\n",
                inc.availability,
                inc.auto_requested,
                inc.micro_f1,
                full.micro_f1,
                inc.macro_f1,
                full.macro_f1,
                if e + 1 < n { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_both_modes_on_the_same_timeline() {
        let row = measure(6, 3, 42);
        assert_eq!(row.epochs, 3);
        assert_eq!(row.incremental.outcome.epochs.len(), 3);
        assert_eq!(row.full.outcome.epochs.len(), 3);
        // Identical timeline: the per-epoch arrival counts must agree.
        for (a, b) in row
            .incremental
            .outcome
            .epochs
            .iter()
            .zip(&row.full.outcome.epochs)
        {
            assert_eq!(a.arrivals, b.arrivals);
            assert_eq!(a.new_manual, b.new_manual);
        }
        assert!(row.incremental.outcome.final_micro_f1() > 0.0);
        assert!(row.incremental.train_secs() > 0.0);
        let json = to_json(&[row], 42);
        assert!(json.contains("\"train_speedup\""));
        assert!(json.contains("\"total_speedup\""));
        assert!(json.contains("\"trajectory\""));
    }
}
