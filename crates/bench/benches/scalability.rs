//! E2 benchmark: protocol training time as the number of peers grows (the
//! same sweep whose accuracy/communication rows the E2 table reports).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ml::{MultiLabelDataset, MultiLabelExample};
use p2pclassify::{Cempar, CemparConfig, P2PTagClassifier, Pace, PaceConfig};
use p2psim::{P2PNetwork, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textproc::SparseVector;

fn peer_data(num_peers: usize, per_peer: usize, seed: u64) -> Vec<MultiLabelDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_peers)
        .map(|_| {
            (0..per_peer)
                .map(|_| {
                    let tag = rng.gen_range(1..=4u32);
                    let v = SparseVector::from_pairs(
                        (0..12).map(|j| (tag * 20 + j, 1.0 + rng.gen_range(-0.3..0.3))),
                    );
                    MultiLabelExample::new(v, [tag])
                })
                .collect()
        })
        .collect()
}

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_scalability");
    group.sample_size(10);
    for &n in &[32usize, 128, 512] {
        let data = peer_data(n, 6, 17);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("cempar_train", n), &n, |b, &n| {
            b.iter(|| {
                let mut net = P2PNetwork::new(SimConfig::with_peers(n));
                let mut proto = Cempar::new(CemparConfig::for_network(n));
                proto.train(&mut net, &data).unwrap();
                net.stats().total_bytes()
            })
        });
        group.bench_with_input(BenchmarkId::new("pace_train", n), &n, |b, &n| {
            b.iter(|| {
                let mut net = P2PNetwork::new(SimConfig::with_peers(n));
                let mut proto = Pace::new(PaceConfig::default());
                proto.train(&mut net, &data).unwrap();
                net.stats().total_bytes()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
