//! E10 — document preprocessing pipeline throughput (Figure 1, left box):
//! tokenization, stop-word filtering, Porter stemming and TF-IDF vectorization.

use bench::{corpus_spec, Scale};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dataset::CorpusGenerator;
use textproc::{PorterStemmer, PreprocessPipeline, Tokenizer};

fn bench_preprocessing(c: &mut Criterion) {
    let corpus = CorpusGenerator::new(corpus_spec(8, Scale::Small, 7)).generate();
    let texts: Vec<&str> = corpus.documents().iter().map(|d| d.text.as_str()).collect();

    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(20);

    group.bench_function("tokenize_corpus", |b| {
        let tokenizer = Tokenizer::default();
        b.iter(|| {
            texts
                .iter()
                .map(|t| tokenizer.tokenize(t).len())
                .sum::<usize>()
        })
    });

    group.bench_function("porter_stem_corpus", |b| {
        let tokenizer = Tokenizer::default();
        let stemmer = PorterStemmer::new();
        let tokens: Vec<Vec<String>> = texts.iter().map(|t| tokenizer.tokenize(t)).collect();
        b.iter_batched(
            || tokens.clone(),
            |mut tokens| {
                for doc in &mut tokens {
                    stemmer.stem_all(doc);
                }
                tokens.len()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("fit_transform_tfidf", |b| {
        b.iter(|| {
            let mut pipeline = PreprocessPipeline::new();
            pipeline.fit_transform(texts.iter().copied()).len()
        })
    });

    group.bench_function("transform_single_document", |b| {
        let mut pipeline = PreprocessPipeline::new();
        pipeline.fit(texts.iter().copied());
        b.iter(|| pipeline.transform(texts[0]).nnz())
    });

    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
