//! E5 substrate benchmarks: Chord DHT routing vs unstructured flooding, and
//! raw discrete-event engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2psim::engine::{Application, Context, Engine};
use p2psim::message::MessageKind;
use p2psim::overlay::{ChordOverlay, Overlay, UnstructuredConfig, UnstructuredOverlay};
use p2psim::peer::{content_key, PeerId};
use p2psim::physical::PhysicalNetwork;

fn bench_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay");
    group.sample_size(20);

    for &n in &[128usize, 512] {
        let chord = ChordOverlay::with_peers((0..n as u64).map(PeerId));
        group.bench_with_input(BenchmarkId::new("chord_lookup", n), &n, |b, &n| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                chord
                    .lookup(PeerId(i % n as u64), content_key(&i.to_le_bytes()))
                    .map(|r| r.hops())
            })
        });

        let flood = UnstructuredOverlay::with_peers(
            UnstructuredConfig::default(),
            (0..n as u64).map(PeerId),
        );
        group.bench_with_input(BenchmarkId::new("flood_lookup", n), &n, |b, &n| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                flood
                    .lookup(PeerId(i % n as u64), content_key(&i.to_le_bytes()))
                    .map(|r| r.messages)
            })
        });
    }

    // Discrete-event engine throughput: a ping storm among 64 peers.
    struct Flood;
    impl Application for Flood {
        type Payload = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            for p in ctx.online_peers() {
                if p != ctx.self_id() {
                    ctx.send(p, MessageKind::Other, 16, 0);
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: PeerId, hop: u32) {
            if hop < 1 {
                ctx.send(from, MessageKind::Other, 16, hop + 1);
            }
        }
    }
    group.bench_function("event_engine_64_peer_ping_storm", |b| {
        b.iter(|| {
            let apps = (0..64).map(|_| Flood).collect();
            let mut engine = Engine::new(apps, PhysicalNetwork::default(), 3);
            engine.run_to_completion()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_overlay);
criterion_main!(benches);
