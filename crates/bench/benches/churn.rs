//! E4 benchmark: churn-timeline generation and prediction under churn — the
//! machinery behind the churn-resilience table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ml::{MultiLabelDataset, MultiLabelExample};
use p2pclassify::{Centralized, CentralizedConfig, P2PTagClassifier, Pace, PaceConfig};
use p2psim::churn::{ChurnModel, ChurnTimeline};
use p2psim::{P2PNetwork, PeerId, SimConfig, SimTime};
use textproc::SparseVector;

fn peer_data(num_peers: usize) -> Vec<MultiLabelDataset> {
    (0..num_peers)
        .map(|i| {
            (0..6)
                .map(|j| {
                    let tag = 1 + ((i + j) % 3) as u32;
                    MultiLabelExample::new(
                        SparseVector::from_pairs([(tag, 1.0 + 0.05 * j as f64)]),
                        [tag],
                    )
                })
                .collect()
        })
        .collect()
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_churn");
    group.sample_size(10);

    group.bench_function("timeline_generation_512_peers", |b| {
        b.iter(|| {
            ChurnTimeline::generate(
                ChurnModel::Exponential {
                    mean_session_secs: 600.0,
                    mean_offline_secs: 300.0,
                },
                512,
                SimTime::from_secs(100_000),
                9,
            )
            .events()
            .len()
        })
    });

    let churn_sim = SimConfig {
        num_peers: 64,
        churn: ChurnModel::Exponential {
            mean_session_secs: 800.0,
            mean_offline_secs: 400.0,
        },
        horizon_secs: 1_000_000,
        ..SimConfig::default()
    };
    let data = peer_data(64);
    let probe = SparseVector::from_pairs([(1, 1.0)]);

    for (name, centralized) in [("pace", false), ("centralized", true)] {
        group.bench_with_input(
            BenchmarkId::new("predict_under_churn", name),
            &centralized,
            |b, &centralized| {
                let mut net = P2PNetwork::new(churn_sim.clone());
                let proto: Box<dyn P2PTagClassifier> = if centralized {
                    let mut p = Centralized::new(CentralizedConfig::default());
                    p.train(&mut net, &data).unwrap();
                    Box::new(p)
                } else {
                    let mut p = Pace::new(PaceConfig::default());
                    p.train(&mut net, &data).unwrap();
                    Box::new(p)
                };
                b.iter(|| {
                    net.advance(SimTime::from_secs(500));
                    let requester = net.online_peers().next().unwrap_or(PeerId(0));
                    proto.predict(&mut net, requester, &probe).is_ok()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
