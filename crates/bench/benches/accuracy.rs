//! E1 benchmark: end-to-end learn + auto-tag wall time for every protocol on
//! the same workload (the time behind each row of the E1 accuracy table).

use bench::{run_system, standard_protocols, Scale, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_accuracy(c: &mut Criterion) {
    let workload = Workload::generate(8, Scale::Small, 11);
    let mut group = c.benchmark_group("e1_accuracy");
    group.sample_size(10);
    for protocol in standard_protocols(8) {
        group.bench_with_input(
            BenchmarkId::new("learn_and_tag", protocol.name()),
            &protocol,
            |b, protocol| {
                b.iter(|| {
                    let r = run_system(&workload, protocol.clone(), None, 11);
                    r.outcome.metrics.micro_f1()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_accuracy);
criterion_main!(benches);
