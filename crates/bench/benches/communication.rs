//! E3 benchmark: the training (model/data propagation) phase of each protocol,
//! which dominates its communication cost.

use bench::{Scale, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doctagger::{DocTaggerConfig, P2PDocTagger, ProtocolKind};
use p2pclassify::CemparConfig;

fn bench_communication(c: &mut Criterion) {
    let workload = Workload::generate(12, Scale::Small, 13);
    let mut group = c.benchmark_group("e3_training_phase");
    group.sample_size(10);
    for protocol in [
        ProtocolKind::Cempar(CemparConfig::for_network(12)),
        ProtocolKind::pace(),
        ProtocolKind::centralized(),
        ProtocolKind::local_only(),
    ] {
        group.bench_with_input(
            BenchmarkId::new("learn", protocol.name()),
            &protocol,
            |b, protocol| {
                b.iter(|| {
                    let mut system = P2PDocTagger::new(DocTaggerConfig {
                        protocol: protocol.clone(),
                        ..DocTaggerConfig::default()
                    });
                    system.ingest(&workload.corpus);
                    system.learn(&workload.split).unwrap();
                    system.network_stats().total_bytes()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_communication);
criterion_main!(benches);
