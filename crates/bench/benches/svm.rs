//! Micro-benchmarks of the learning substrate used by both protocols:
//! linear SVM (PACE base classifier), kernel SVM + cascade merge (CEMPaR base
//! classifier), k-means and LSH queries.

use criterion::{criterion_group, criterion_main, Criterion};
use ml::cascade::CascadeSvm;
use ml::kmeans::{KMeans, KMeansConfig};
use ml::lsh::{LshConfig, LshIndex};
use ml::svm::{KernelSvmTrainer, LinearSvmTrainer};
use ml::Kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textproc::SparseVector;

fn synthetic_problem(n: usize, dim: u32, nnz: usize, seed: u64) -> (Vec<SparseVector>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let y = rng.gen_bool(0.5);
        let offset = if y { 1.0 } else { -1.0 };
        let v = SparseVector::from_pairs(
            (0..nnz).map(|_| (rng.gen_range(0..dim), offset + rng.gen_range(-0.5..0.5))),
        );
        xs.push(v);
        ys.push(y);
    }
    (xs, ys)
}

fn bench_svm(c: &mut Criterion) {
    let (xs, ys) = synthetic_problem(200, 500, 30, 1);
    let mut group = c.benchmark_group("svm");
    group.sample_size(20);

    group.bench_function("linear_svm_train_200x500", |b| {
        let trainer = LinearSvmTrainer::default();
        b.iter(|| trainer.train(&xs, &ys))
    });

    group.bench_function("kernel_svm_train_200x500", |b| {
        let trainer = KernelSvmTrainer::with_kernel(Kernel::Linear);
        b.iter(|| trainer.train(&xs, &ys))
    });

    group.bench_function("linear_svm_predict_1000", |b| {
        let model = LinearSvmTrainer::default().train(&xs, &ys);
        use ml::svm::BinaryClassifier;
        b.iter(|| {
            xs.iter()
                .cycle()
                .take(1000)
                .filter(|x| model.predict(x))
                .count()
        })
    });

    group.bench_function("cascade_merge_4_models", |b| {
        let trainer = KernelSvmTrainer::with_kernel(Kernel::Linear);
        let models: Vec<_> = (0..4)
            .map(|i| {
                let lo = i * 50;
                trainer.train(&xs[lo..lo + 50], &ys[lo..lo + 50])
            })
            .collect();
        let cascade = CascadeSvm::with_kernel(Kernel::Linear);
        b.iter(|| cascade.merge(&models))
    });

    group.bench_function("kmeans_k4_200_points", |b| {
        let config = KMeansConfig {
            k: 4,
            ..Default::default()
        };
        b.iter(|| KMeans::fit(&xs, &config))
    });

    group.bench_function("lsh_query_top7_of_500", |b| {
        let mut index = LshIndex::new(LshConfig::default());
        let (centroids, _) = synthetic_problem(500, 500, 20, 2);
        for (i, c) in centroids.iter().enumerate() {
            index.insert(c.clone(), i);
        }
        b.iter(|| index.query(&xs[0], 7).len())
    });

    group.finish();
}

criterion_group!(benches, bench_svm);
criterion_main!(benches);
