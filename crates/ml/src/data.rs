//! Labeled-example containers shared by the learning and P2P layers.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use textproc::SparseVector;

/// Identifier of a tag in the global tag universe `Y`.
pub type TagId = u32;

/// A document vector together with its assigned tag set.
///
/// This is the unit of training data exchanged (in feature-vector form only —
/// never raw text) between the tagging system and the classification layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelExample {
    /// Preprocessed sparse document vector.
    pub vector: SparseVector,
    /// Tags assigned to the document (possibly empty).
    pub tags: BTreeSet<TagId>,
}

impl MultiLabelExample {
    /// Creates an example from a vector and any iterable of tag ids.
    pub fn new<I: IntoIterator<Item = TagId>>(vector: SparseVector, tags: I) -> Self {
        Self {
            vector,
            tags: tags.into_iter().collect(),
        }
    }

    /// Returns whether the example carries the given tag.
    pub fn has_tag(&self, tag: TagId) -> bool {
        self.tags.contains(&tag)
    }

    /// Approximate wire size in bytes when the vector and tag list are shipped
    /// to another peer (used for communication-cost accounting).
    pub fn wire_size(&self) -> usize {
        self.vector.wire_size() + self.tags.len() * std::mem::size_of::<TagId>() + 4
    }
}

/// A collection of multi-label examples with helpers for the one-vs-all
/// reduction described in §2 of the paper.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelDataset {
    examples: Vec<MultiLabelExample>,
}

impl MultiLabelDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from a vector of examples.
    pub fn from_examples(examples: Vec<MultiLabelExample>) -> Self {
        Self { examples }
    }

    /// Adds an example.
    pub fn push(&mut self, example: MultiLabelExample) {
        self.examples.push(example);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The examples, in insertion order.
    pub fn examples(&self) -> &[MultiLabelExample] {
        &self.examples
    }

    /// Iterates over the examples.
    pub fn iter(&self) -> impl Iterator<Item = &MultiLabelExample> {
        self.examples.iter()
    }

    /// The set of all tags occurring in the dataset (the observed universe `Y`).
    pub fn tag_universe(&self) -> BTreeSet<TagId> {
        self.examples
            .iter()
            .flat_map(|e| e.tags.iter().copied())
            .collect()
    }

    /// Number of examples carrying the given tag.
    pub fn tag_count(&self, tag: TagId) -> usize {
        self.examples.iter().filter(|e| e.has_tag(tag)).count()
    }

    /// Produces the one-against-all binary view for `tag`: data from the target
    /// tag belongs to the positive class and all other data to the negative
    /// class.
    pub fn one_vs_all(&self, tag: TagId) -> (Vec<SparseVector>, Vec<bool>) {
        let xs = self.examples.iter().map(|e| e.vector.clone()).collect();
        let ys = self.examples.iter().map(|e| e.has_tag(tag)).collect();
        (xs, ys)
    }

    /// Merges another dataset into this one.
    pub fn extend_from(&mut self, other: &MultiLabelDataset) {
        self.examples.extend_from_slice(&other.examples);
    }

    /// Total wire size of the dataset if shipped raw to another peer.
    pub fn wire_size(&self) -> usize {
        self.examples.iter().map(MultiLabelExample::wire_size).sum()
    }

    /// Splits the dataset into `n` nearly equal chunks (for distributing among
    /// peers in tests).
    pub fn chunks(&self, n: usize) -> Vec<MultiLabelDataset> {
        assert!(n > 0, "cannot split into zero chunks");
        let mut out = vec![MultiLabelDataset::new(); n];
        for (i, ex) in self.examples.iter().enumerate() {
            out[i % n].push(ex.clone());
        }
        out
    }
}

impl FromIterator<MultiLabelExample> for MultiLabelDataset {
    fn from_iter<T: IntoIterator<Item = MultiLabelExample>>(iter: T) -> Self {
        Self {
            examples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(tags: &[TagId]) -> MultiLabelExample {
        MultiLabelExample::new(SparseVector::from_pairs([(0, 1.0)]), tags.iter().copied())
    }

    #[test]
    fn tag_universe_and_counts() {
        let ds = MultiLabelDataset::from_examples(vec![ex(&[1, 2]), ex(&[2]), ex(&[3])]);
        assert_eq!(ds.tag_universe(), BTreeSet::from([1, 2, 3]));
        assert_eq!(ds.tag_count(2), 2);
        assert_eq!(ds.tag_count(9), 0);
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn one_vs_all_labels() {
        let ds = MultiLabelDataset::from_examples(vec![ex(&[1]), ex(&[2]), ex(&[1, 2])]);
        let (xs, ys) = ds.one_vs_all(1);
        assert_eq!(xs.len(), 3);
        assert_eq!(ys, vec![true, false, true]);
    }

    #[test]
    fn chunks_cover_all_examples() {
        let ds = MultiLabelDataset::from_examples(vec![ex(&[1]); 10]);
        let chunks = ds.chunks(3);
        assert_eq!(chunks.len(), 3);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn wire_size_is_positive() {
        let ds = MultiLabelDataset::from_examples(vec![ex(&[1, 2])]);
        assert!(ds.wire_size() > 0);
    }
}
