//! Labeled-example containers shared by the learning and P2P layers.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use textproc::{CsrMatrix, SparseVector};

/// Identifier of a tag in the global tag universe `Y`.
pub type TagId = u32;

/// A document vector together with its assigned tag set.
///
/// This is the unit of training data exchanged (in feature-vector form only —
/// never raw text) between the tagging system and the classification layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelExample {
    /// Preprocessed sparse document vector.
    pub vector: SparseVector,
    /// Tags assigned to the document (possibly empty).
    pub tags: BTreeSet<TagId>,
}

impl MultiLabelExample {
    /// Creates an example from a vector and any iterable of tag ids.
    pub fn new<I: IntoIterator<Item = TagId>>(vector: SparseVector, tags: I) -> Self {
        Self {
            vector,
            tags: tags.into_iter().collect(),
        }
    }

    /// Returns whether the example carries the given tag.
    pub fn has_tag(&self, tag: TagId) -> bool {
        self.tags.contains(&tag)
    }

    /// Approximate wire size in bytes when the vector and tag list are shipped
    /// to another peer (used for communication-cost accounting).
    pub fn wire_size(&self) -> usize {
        example_wire_size(&self.vector, &self.tags)
    }
}

/// The wire-cost model of one (vector, tag set) example — shared by
/// [`MultiLabelExample::wire_size`] and [`MultiLabelDataset::wire_size`] so
/// the per-example and aggregate accountings cannot diverge.
fn example_wire_size(vector: &SparseVector, tags: &BTreeSet<TagId>) -> usize {
    vector.wire_size() + tags.len() * std::mem::size_of::<TagId>() + 4
}

/// A collection of multi-label examples with helpers for the one-vs-all
/// reduction described in §2 of the paper.
///
/// Vectors and tag sets are stored as parallel arrays (structure-of-arrays)
/// so the one-vs-all trainer and the batched scoring engine can borrow the
/// whole feature-vector slice once via [`Self::vectors`] instead of cloning
/// the corpus per tag.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelDataset {
    vectors: Vec<SparseVector>,
    tags: Vec<BTreeSet<TagId>>,
}

impl MultiLabelDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from a vector of examples.
    pub fn from_examples(examples: Vec<MultiLabelExample>) -> Self {
        examples.into_iter().collect()
    }

    /// Adds an example.
    pub fn push(&mut self, example: MultiLabelExample) {
        self.vectors.push(example.vector);
        self.tags.push(example.tags);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The feature vectors of every example, in insertion order. This is the
    /// borrow-once view the one-vs-all trainer and the batched scorers use:
    /// per-tag training only needs a label mask on top of this shared slice.
    pub fn vectors(&self) -> &[SparseVector] {
        &self.vectors
    }

    /// The tag sets of every example, parallel to [`Self::vectors`].
    pub fn tag_sets(&self) -> &[BTreeSet<TagId>] {
        &self.tags
    }

    /// The `i`-th example, reassembled by cloning (prefer the borrowed
    /// [`Self::vectors`] / [`Self::tag_sets`] views on hot paths).
    pub fn example(&self, i: usize) -> MultiLabelExample {
        MultiLabelExample {
            vector: self.vectors[i].clone(),
            tags: self.tags[i].clone(),
        }
    }

    /// Iterates over `(vector, tag set)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&SparseVector, &BTreeSet<TagId>)> {
        self.vectors.iter().zip(self.tags.iter())
    }

    /// The set of all tags occurring in the dataset (the observed universe `Y`).
    pub fn tag_universe(&self) -> BTreeSet<TagId> {
        self.tags.iter().flat_map(|t| t.iter().copied()).collect()
    }

    /// Number of examples carrying the given tag.
    pub fn tag_count(&self, tag: TagId) -> usize {
        self.tags.iter().filter(|t| t.contains(&tag)).count()
    }

    /// Per-tag positive-example counts over the whole dataset, computed in one
    /// pass (use instead of [`Self::tag_count`] per tag on hot paths).
    pub fn tag_counts(&self) -> std::collections::BTreeMap<TagId, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for tags in &self.tags {
            for &t in tags {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The one-against-all label mask for `tag`: `mask[i]` is `true` iff
    /// example `i` carries the tag. Pair with [`Self::vectors`] for a
    /// zero-copy one-vs-all view.
    pub fn label_mask(&self, tag: TagId) -> Vec<bool> {
        self.tags.iter().map(|t| t.contains(&tag)).collect()
    }

    /// [`Self::label_mask`] into a caller-provided buffer, so a loop over the
    /// tag universe reuses one allocation instead of allocating per tag.
    pub fn label_mask_into(&self, tag: TagId, mask: &mut Vec<bool>) {
        mask.clear();
        mask.extend(self.tags.iter().map(|t| t.contains(&tag)));
    }

    /// Produces the one-against-all binary view for `tag`: the feature-vector
    /// slice is borrowed (shared by every tag), only the boolean label mask is
    /// per-tag.
    pub fn one_vs_all(&self, tag: TagId) -> (&[SparseVector], Vec<bool>) {
        (&self.vectors, self.label_mask(tag))
    }

    /// The pre-refactor form of [`Self::one_vs_all`], returning an owned copy
    /// of the full feature-vector list per tag. Kept **only** as the legacy
    /// reference the throughput benchmark measures the borrow-once/CSR
    /// training paths against; never call this on a hot path. (With the
    /// shared-storage [`SparseVector`] the per-vector copies are now
    /// reference-count bumps, so even the legacy path no longer duplicates
    /// the underlying entry arrays.)
    pub fn one_vs_all_cloned(&self, tag: TagId) -> (Vec<SparseVector>, Vec<bool>) {
        (self.vectors.clone(), self.label_mask(tag))
    }

    /// Materializes the feature vectors as a row-major [`CsrMatrix`] — the
    /// contiguous borrow-once layout the CSR-native training path
    /// ([`crate::multilabel::OneVsAllTrainer::train_linear_csr`]) iterates.
    /// Built in one `O(nnz)` pass; the matrix is a snapshot (it does not track
    /// later pushes).
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_vectors(&self.vectors)
    }

    /// Merges another dataset into this one.
    pub fn extend_from(&mut self, other: &MultiLabelDataset) {
        self.vectors.extend_from_slice(&other.vectors);
        self.tags.extend_from_slice(&other.tags);
    }

    /// Keeps only the first `len` examples (no-op when already shorter) —
    /// used to roll back speculatively appended examples.
    pub fn truncate(&mut self, len: usize) {
        self.vectors.truncate(len);
        self.tags.truncate(len);
    }

    /// Total wire size of the dataset if shipped raw to another peer.
    pub fn wire_size(&self) -> usize {
        self.iter().map(|(v, t)| example_wire_size(v, t)).sum()
    }

    /// Splits the dataset into `n` nearly equal chunks (for distributing among
    /// peers in tests).
    pub fn chunks(&self, n: usize) -> Vec<MultiLabelDataset> {
        assert!(n > 0, "cannot split into zero chunks");
        let mut out = vec![MultiLabelDataset::new(); n];
        for (i, (v, t)) in self.iter().enumerate() {
            out[i % n].vectors.push(v.clone());
            out[i % n].tags.push(t.clone());
        }
        out
    }
}

impl FromIterator<MultiLabelExample> for MultiLabelDataset {
    fn from_iter<T: IntoIterator<Item = MultiLabelExample>>(iter: T) -> Self {
        let mut out = Self::new();
        for ex in iter {
            out.push(ex);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(tags: &[TagId]) -> MultiLabelExample {
        MultiLabelExample::new(SparseVector::from_pairs([(0, 1.0)]), tags.iter().copied())
    }

    #[test]
    fn tag_universe_and_counts() {
        let ds = MultiLabelDataset::from_examples(vec![ex(&[1, 2]), ex(&[2]), ex(&[3])]);
        assert_eq!(ds.tag_universe(), BTreeSet::from([1, 2, 3]));
        assert_eq!(ds.tag_count(2), 2);
        assert_eq!(ds.tag_count(9), 0);
        assert_eq!(ds.len(), 3);
        let counts = ds.tag_counts();
        assert_eq!(counts.get(&2), Some(&2));
        assert_eq!(counts.get(&9), None);
    }

    #[test]
    fn one_vs_all_labels() {
        let ds = MultiLabelDataset::from_examples(vec![ex(&[1]), ex(&[2]), ex(&[1, 2])]);
        let (xs, ys) = ds.one_vs_all(1);
        assert_eq!(xs.len(), 3);
        assert_eq!(ys, vec![true, false, true]);
        // The zero-copy view agrees with the legacy cloning one.
        let (cloned_xs, cloned_ys) = ds.one_vs_all_cloned(1);
        assert_eq!(ds.vectors(), cloned_xs.as_slice());
        assert_eq!(ds.vectors(), xs);
        assert_eq!(ds.label_mask(1), ys);
        assert_eq!(cloned_ys, ys);
        let mut mask = Vec::new();
        ds.label_mask_into(2, &mut mask);
        assert_eq!(mask, ds.label_mask(2));
        ds.label_mask_into(1, &mut mask);
        assert_eq!(mask, ys, "buffer is reusable across tags");
    }

    #[test]
    fn csr_snapshot_matches_vectors() {
        let mut ds = MultiLabelDataset::from_examples(vec![ex(&[1]), ex(&[2])]);
        ds.push(MultiLabelExample::new(
            SparseVector::from_pairs([(3, 2.0), (7, -1.0)]),
            [4],
        ));
        let csr = ds.to_csr();
        assert_eq!(csr.num_rows(), ds.len());
        for (i, v) in ds.vectors().iter().enumerate() {
            assert_eq!(&csr.row_vector(i), v);
        }
    }

    #[test]
    fn chunks_cover_all_examples() {
        let ds = MultiLabelDataset::from_examples(vec![ex(&[1]); 10]);
        let chunks = ds.chunks(3);
        assert_eq!(chunks.len(), 3);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn wire_size_is_positive() {
        let ds = MultiLabelDataset::from_examples(vec![ex(&[1, 2])]);
        assert!(ds.wire_size() > 0);
    }

    #[test]
    fn example_roundtrips_through_parallel_arrays() {
        let ds = MultiLabelDataset::from_examples(vec![ex(&[1, 3]), ex(&[2])]);
        assert_eq!(ds.example(0), ex(&[1, 3]));
        assert_eq!(ds.example(1), ex(&[2]));
        assert_eq!(ds.tag_sets()[0], BTreeSet::from([1, 3]));
    }
}
