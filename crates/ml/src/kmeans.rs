//! K-means clustering of sparse document vectors.
//!
//! PACE peers "perform clustering on the training data" and propagate the
//! cluster centroids together with their linear model; the centroids act as a
//! compact sketch of the local data distribution that other peers use to decide
//! which models are relevant for a given test document.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use textproc::{sparse, SparseVector};

/// K-means configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters `k` (clamped to the number of points).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 4,
            max_iter: 50,
            tol: 1e-6,
            seed: 17,
        }
    }
}

/// Result of running k-means: centroids and point assignments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<SparseVector>,
    assignments: Vec<usize>,
    inertia: f64,
}

impl KMeans {
    /// Runs k-means++ initialization followed by Lloyd's algorithm.
    ///
    /// # Panics
    /// Panics if `points` is empty or `config.k == 0`.
    pub fn fit(points: &[SparseVector], config: &KMeansConfig) -> Self {
        assert!(!points.is_empty(), "cannot cluster an empty set");
        assert!(config.k > 0, "k must be positive");
        let k = config.k.min(points.len());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = Self::kmeanspp_init(points, k, &mut rng);
        let mut assignments = vec![0usize; points.len()];
        let mut inertia = f64::INFINITY;

        for _ in 0..config.max_iter {
            // Assignment step.
            let mut new_inertia = 0.0;
            for (i, p) in points.iter().enumerate() {
                let (best, dist) = Self::nearest(&centroids, p);
                assignments[i] = best;
                new_inertia += dist;
            }
            // Update step. Members are averaged straight off the borrowed
            // point slice (same accumulation order as collecting them first,
            // so the centroids are bit-identical to the pre-refactor
            // clone-into-scratch version — without the per-iteration copies).
            let mut movement = 0.0;
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members = points
                    .iter()
                    .zip(&assignments)
                    .filter(|&(_, &a)| a == c)
                    .map(|(p, _)| p);
                if assignments.iter().all(|&a| a != c) {
                    continue; // keep the old centroid for an empty cluster
                }
                let new_centroid = sparse::mean_iter(members);
                movement += centroid.distance(&new_centroid);
                *centroid = new_centroid;
            }
            inertia = new_inertia;
            if movement < config.tol {
                break;
            }
        }
        Self {
            centroids,
            assignments,
            inertia,
        }
    }

    fn kmeanspp_init(points: &[SparseVector], k: usize, rng: &mut StdRng) -> Vec<SparseVector> {
        let mut centroids = Vec::with_capacity(k);
        centroids.push(points[rng.gen_range(0..points.len())].clone());
        while centroids.len() < k {
            // Squared distance of every point to its nearest chosen centroid.
            let d2: Vec<f64> = points
                .iter()
                .map(|p| Self::nearest(&centroids, p).1)
                .collect();
            let total: f64 = d2.iter().sum();
            if total <= f64::EPSILON {
                // All remaining points coincide with existing centroids.
                centroids.push(points[rng.gen_range(0..points.len())].clone());
                continue;
            }
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            centroids.push(points[chosen].clone());
        }
        centroids
    }

    fn nearest(centroids: &[SparseVector], p: &SparseVector) -> (usize, f64) {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in centroids.iter().enumerate() {
            let d = c.distance_sq(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        (best, best_d)
    }

    /// The cluster centroids.
    pub fn centroids(&self) -> &[SparseVector] {
        &self.centroids
    }

    /// Cluster index assigned to each input point (same order as the input).
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances of points to their assigned centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Index of the centroid nearest to `x`.
    pub fn predict(&self, x: &SparseVector) -> usize {
        Self::nearest(&self.centroids, x).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), n: usize, seed: u64) -> Vec<SparseVector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                SparseVector::from_pairs([
                    (0, center.0 + rng.gen_range(-0.2..0.2)),
                    (1, center.1 + rng.gen_range(-0.2..0.2)),
                ])
            })
            .collect()
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let mut pts = blob((5.0, 5.0), 30, 1);
        pts.extend(blob((-5.0, -5.0), 30, 2));
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        // All points of each blob must share a cluster.
        let first = km.assignments()[0];
        assert!(km.assignments()[..30].iter().all(|&a| a == first));
        let second = km.assignments()[30];
        assert!(km.assignments()[30..].iter().all(|&a| a == second));
        assert_ne!(first, second);
    }

    #[test]
    fn k_clamped_to_number_of_points() {
        let pts = blob((0.0, 0.0), 3, 3);
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
        );
        assert_eq!(km.centroids().len(), 3);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut pts = blob((5.0, 5.0), 20, 4);
        pts.extend(blob((-5.0, -5.0), 20, 5));
        pts.extend(blob((5.0, -5.0), 20, 6));
        let one = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
        );
        let three = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert!(three.inertia() < one.inertia());
    }

    #[test]
    fn predict_assigns_to_nearest_centroid() {
        let mut pts = blob((5.0, 5.0), 20, 7);
        pts.extend(blob((-5.0, -5.0), 20, 8));
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        let near_first = SparseVector::from_pairs([(0, 4.9), (1, 5.1)]);
        assert_eq!(km.predict(&near_first), km.assignments()[0]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = blob((1.0, 1.0), 25, 9);
        let a = KMeans::fit(&pts, &KMeansConfig::default());
        let b = KMeans::fit(&pts, &KMeansConfig::default());
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn identical_points_do_not_panic() {
        let pts = vec![SparseVector::from_pairs([(0, 1.0)]); 5];
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(km.centroids().len(), 3);
        assert!(km.inertia() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        KMeans::fit(&[], &KMeansConfig::default());
    }
}
