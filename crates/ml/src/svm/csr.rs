//! CSR-native linear SVM training.
//!
//! The scalar [`LinearSvmTrainer`] entry points take a `&[SparseVector]` and
//! re-derive everything per call: the problem dimension, the DCD diagonal
//! `Q_ii = x_i·x_i + 1`, the shuffled visit orders, and one fresh allocation
//! each for the weight buffer, the dual variables and the ±1 label vector.
//! Driven one-vs-all over a tag universe, all of that is recomputed once *per
//! tag* even though none of it depends on the tag: the diagonal is a property
//! of the data alone, and — because every per-tag trainer seeds its RNG with
//! the same `seed` — the pass-`p` shuffle order is **identical across tags**.
//!
//! [`CsrLinearTrainer`] hoists the tag-independent state out of the per-tag
//! loop: it borrows the dataset as a [`CsrMatrix`] (one contiguous row arena
//! instead of two heap allocations per document), computes the diagonal once
//! (and can borrow it across parallel workers via [`CsrLinearTrainer::with_diagonal`]),
//! replays the identical per-pass shuffle stream from a memory-bounded
//! shared cache, and reuses one weight/dual/label scratch across all fits.
//! The solver loops stream CSR rows through the bounds-check-free row
//! kernels ([`CsrMatrix::row_dot_dense`] / [`CsrMatrix::row_axpy_into`]).
//!
//! # Equivalence contract
//!
//! For every `(trainer, dataset, labels)`, [`CsrLinearTrainer::train`] and
//! [`CsrLinearTrainer::train_warm`] produce models **bit-identical** to
//! [`LinearSvmTrainer::train`] / [`LinearSvmTrainer::train_warm`] on the same
//! data: every floating-point operation happens in the same sequence (row
//! kernels accumulate in stored order, shared shuffle orders replay the exact
//! per-tag RNG streams, the shared diagonal holds the same bits the per-call
//! recomputation would produce). The scalar path is kept untouched as the
//! reference; the property tests below and the protocol equivalence suite in
//! `p2pclassify` pin the contract.

use super::{LinearSolver, LinearSvm, LinearSvmTrainer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use textproc::CsrMatrix;

/// The XOR applied to the trainer seed by [`LinearSvmTrainer::train_warm`]'s
/// RNG (kept in sync with `linear.rs`).
pub(crate) const WARM_SEED_XOR: u64 = 0x57A8_57A8;

/// Memory budget for one cache's retained shuffle orders. The cache keeps at
/// most `budget / (4 · n)` passes (never fewer than [`MIN_CACHED_PASSES`]),
/// so small/medium problems — where the `O(n)` shuffle is a double-digit
/// fraction of an `O(n · nnz)` solve pass — replay every pass for free,
/// while a huge corpus cannot pin `O(max_iter · n)` memory.
const ORDER_CACHE_BYTES: usize = 4 << 20;

/// Floor on the retained-pass cap (most tags converge within a few passes).
const MIN_CACHED_PASSES: usize = 8;

/// A replayable shuffle-order cache for one RNG stream: the `p`-th order of
/// every fit is the permutation the scalar solver's `order.shuffle(&mut
/// rng)` produces on its `p`-th pass — every per-tag solver seeds
/// identically, so all tags replay the same stream. The first `cap` passes
/// are materialized once and shared by every fit; a fit that runs longer
/// continues the stream through its own private tail ([`OrderStream`]),
/// keeping memory bounded by [`ORDER_CACHE_BYTES`] regardless of `max_iter`.
#[derive(Debug)]
struct OrderCache {
    rng: StdRng,
    state: Vec<u32>,
    cached: Vec<Vec<u32>>,
    cap: usize,
}

impl OrderCache {
    fn new(seed: u64, n: usize) -> Self {
        let cap = (ORDER_CACHE_BYTES / (4 * n.max(1))).max(MIN_CACHED_PASSES);
        Self::with_cap(seed, n, cap)
    }

    fn with_cap(seed: u64, n: usize, cap: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            state: (0..n as u32).collect(),
            cached: Vec::new(),
            cap,
        }
    }

    /// Starts replaying the stream from pass 0 for one fit.
    fn stream(&mut self) -> OrderStream<'_> {
        OrderStream {
            cache: self,
            pass: 0,
            tail: None,
        }
    }
}

/// One fit's cursor over the shared shuffle stream (see [`OrderCache`]).
#[derive(Debug)]
struct OrderStream<'c> {
    cache: &'c mut OrderCache,
    pass: usize,
    /// Private `(state, rng)` continuation for passes beyond the cache cap,
    /// seeded from the cache's state at the cap — so the stream stays the
    /// exact scalar RNG stream without growing the shared cache.
    tail: Option<(Vec<u32>, StdRng)>,
}

impl OrderStream<'_> {
    /// The visit order of the next pass. The Fisher–Yates swap sequence
    /// depends only on the RNG stream, not the element type, so `Vec<u32>`
    /// replays the scalar solver's `Vec<usize>` shuffles exactly.
    fn next_order(&mut self) -> &[u32] {
        let pass = self.pass;
        self.pass += 1;
        if pass < self.cache.cap {
            while self.cache.cached.len() <= pass {
                self.cache.state.shuffle(&mut self.cache.rng);
                self.cache.cached.push(self.cache.state.clone());
            }
            &self.cache.cached[pass]
        } else {
            // Sequential consumption guarantees the cache is filled to its
            // cap here, so `cache.state`/`cache.rng` hold exactly the
            // post-cap stream position this fit must continue from.
            let tail = self
                .tail
                .get_or_insert_with(|| (self.cache.state.clone(), self.cache.rng.clone()));
            tail.0.shuffle(&mut tail.1);
            &tail.0
        }
    }
}

/// A reusable CSR-native training context over one dataset: create it once
/// per (trainer, dataset), then fit every tag's binary problem through it.
#[derive(Debug)]
pub struct CsrLinearTrainer<'a> {
    trainer: &'a LinearSvmTrainer,
    csr: &'a CsrMatrix,
    /// DCD diagonal `Q_ii = x_i·x_i + 1`, shared by every tag (and, via
    /// [`Self::with_diagonal`], by every parallel worker).
    q: std::borrow::Cow<'a, [f64]>,
    cold_orders: OrderCache,
    warm_orders: OrderCache,
    // Scratch reused across fits (the output model copies out of `w`).
    w: Vec<f64>,
    alpha: Vec<f64>,
    y: Vec<f64>,
}

impl<'a> CsrLinearTrainer<'a> {
    /// Builds the shared training context: one pass over the matrix for the
    /// DCD diagonal; shuffle orders are cached lazily as passes run, with
    /// retention bounded by a fixed memory budget (fits running past the
    /// cached passes continue the stream through a private tail).
    pub fn new(trainer: &'a LinearSvmTrainer, csr: &'a CsrMatrix) -> Self {
        Self::build(
            trainer,
            csr,
            std::borrow::Cow::Owned(Self::dcd_diagonal(csr)),
        )
    }

    /// Like [`Self::new`] but borrowing a precomputed [`Self::dcd_diagonal`],
    /// so parallel tag chunks (one context per worker for the mutable
    /// scratch) share one diagonal instead of recomputing it per worker.
    ///
    /// # Panics
    /// Panics when `q.len()` differs from the number of rows.
    pub fn with_diagonal(trainer: &'a LinearSvmTrainer, csr: &'a CsrMatrix, q: &'a [f64]) -> Self {
        assert_eq!(q.len(), csr.num_rows(), "diagonal must cover every row");
        Self::build(trainer, csr, std::borrow::Cow::Borrowed(q))
    }

    /// The DCD diagonal `Q_ii = x_i·x_i + 1` of a matrix — label-independent
    /// (bit-identical to what every scalar per-tag fit recomputes), so it is
    /// computed once per dataset and shared.
    pub fn dcd_diagonal(csr: &CsrMatrix) -> Vec<f64> {
        (0..csr.num_rows())
            .map(|i| csr.row_norm_sq(i) + 1.0)
            .collect()
    }

    fn build(
        trainer: &'a LinearSvmTrainer,
        csr: &'a CsrMatrix,
        q: std::borrow::Cow<'a, [f64]>,
    ) -> Self {
        let n = csr.num_rows();
        Self {
            trainer,
            csr,
            q,
            cold_orders: OrderCache::new(trainer.seed, n),
            warm_orders: OrderCache::new(trainer.seed ^ WARM_SEED_XOR, n),
            w: Vec::new(),
            alpha: Vec::new(),
            y: Vec::new(),
        }
    }

    /// The matrix this context trains over.
    pub fn matrix(&self) -> &CsrMatrix {
        self.csr
    }

    /// Fills the ±1 label scratch from a boolean mask.
    fn fill_labels(y: &mut Vec<f64>, ys: &[bool]) {
        y.clear();
        y.extend(ys.iter().map(|&b| if b { 1.0 } else { -1.0 }));
    }

    /// Trains a linear SVM on the context's rows against `ys` — bit-identical
    /// to [`LinearSvmTrainer::train`] on the same data.
    ///
    /// # Panics
    /// Panics when `ys.len()` differs from the number of rows or is zero.
    pub fn train(&mut self, ys: &[bool]) -> LinearSvm {
        assert_eq!(
            self.csr.num_rows(),
            ys.len(),
            "xs and ys must have equal length"
        );
        assert!(!ys.is_empty(), "cannot train on an empty dataset");
        match self.trainer.solver {
            LinearSolver::DualCoordinateDescent => self.train_dcd(ys),
            LinearSolver::Pegasos => self.train_pegasos(ys),
        }
    }

    /// Warm refit from `warm`'s weights — bit-identical to
    /// [`LinearSvmTrainer::train_warm`] on the same data (including the
    /// small-problem delegation to the cold solver).
    ///
    /// # Panics
    /// Panics when `ys.len()` differs from the number of rows or is zero.
    pub fn train_warm(&mut self, ys: &[bool], warm: &LinearSvm) -> LinearSvm {
        assert_eq!(
            self.csr.num_rows(),
            ys.len(),
            "xs and ys must have equal length"
        );
        assert!(!ys.is_empty(), "cannot train on an empty dataset");
        let n = self.csr.num_rows();
        if n < self.trainer.warm_min_examples {
            // Tiny problem: the exact cold solve (same delegation as the
            // scalar path).
            return self.train(ys);
        }
        let trainer = self.trainer;
        let csr = self.csr;
        let dim = csr.dim().max(warm.weights().len());
        let lambda = 1.0 / (trainer.c * n as f64);
        Self::fill_labels(&mut self.y, ys);
        let y = &self.y;
        let w = &mut self.w;
        w.clear();
        w.extend_from_slice(warm.weights());
        w.resize(dim, 0.0);
        let mut bias = warm.bias();
        // Pegasos clock starts one epoch in; lazy regularization scale — both
        // exactly as in the scalar warm path.
        let mut t = n;
        let mut scale = 1.0f64;
        let mut orders = self.warm_orders.stream();
        for _pass in 0..trainer.warm_passes.max(1) {
            let order = orders.next_order();
            for &i in order {
                let i = i as usize;
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let yi = y[i];
                let margin = yi * (scale * csr.row_dot_dense(i, w) + bias);
                scale *= 1.0 - eta * lambda;
                if scale < 1e-9 {
                    for wj in w.iter_mut() {
                        *wj *= scale;
                    }
                    scale = 1.0;
                }
                if margin < 1.0 {
                    let step = eta * yi / scale;
                    csr.row_axpy_into(i, step, w);
                    bias += eta * yi * 0.1;
                }
            }
        }
        for wj in w.iter_mut() {
            *wj *= scale;
        }
        LinearSvm::from_weights(w.clone(), bias)
    }

    /// Dual coordinate descent over CSR rows; mirrors the scalar
    /// `train_dcd` operation for operation.
    fn train_dcd(&mut self, ys: &[bool]) -> LinearSvm {
        let trainer = self.trainer;
        let csr = self.csr;
        let n = csr.num_rows();
        let dim = csr.dim();
        let bias_index = dim;
        let q = &self.q;
        Self::fill_labels(&mut self.y, ys);
        let y = &self.y;
        let w = &mut self.w;
        w.clear();
        w.resize(dim + 1, 0.0);
        let alpha = &mut self.alpha;
        alpha.clear();
        alpha.resize(n, 0.0);
        let mut orders = self.cold_orders.stream();
        for _pass in 0..trainer.max_iter {
            let order = orders.next_order();
            let mut max_pg: f64 = 0.0;
            for &i in order {
                let i = i as usize;
                if q[i] == 0.0 {
                    continue;
                }
                // G = y_i * (w·x_i + w_bias) - 1; the row kernel accumulates
                // in stored order, identical to `dot_dense`.
                let wx = csr.row_dot_dense(i, w) + w[bias_index];
                let g = y[i] * wx - 1.0;
                let pg = if alpha[i] == 0.0 {
                    g.min(0.0)
                } else if alpha[i] >= trainer.c {
                    g.max(0.0)
                } else {
                    g
                };
                max_pg = max_pg.max(pg.abs());
                if pg.abs() > 1e-12 {
                    let old = alpha[i];
                    alpha[i] = (old - g / q[i]).clamp(0.0, trainer.c);
                    let delta = (alpha[i] - old) * y[i];
                    if delta != 0.0 {
                        csr.row_axpy_into(i, delta, w);
                        w[bias_index] += delta;
                    }
                }
            }
            if max_pg < trainer.tol {
                break;
            }
        }
        let bias = w[bias_index];
        LinearSvm::from_weights(w[..dim].to_vec(), bias)
    }

    /// Pegasos over CSR rows; mirrors the scalar `train_pegasos`.
    fn train_pegasos(&mut self, ys: &[bool]) -> LinearSvm {
        let trainer = self.trainer;
        let csr = self.csr;
        let n = csr.num_rows();
        let dim = csr.dim();
        let lambda = 1.0 / (trainer.c * n as f64);
        Self::fill_labels(&mut self.y, ys);
        let y = &self.y;
        let w = &mut self.w;
        w.clear();
        w.resize(dim, 0.0);
        let mut bias = 0.0;
        let mut t: usize = 0;
        let mut orders = self.cold_orders.stream();
        for _pass in 0..trainer.max_iter {
            let order = orders.next_order();
            for &i in order {
                let i = i as usize;
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let yi = y[i];
                let margin = yi * (csr.row_dot_dense(i, w) + bias);
                // w ← (1 - ηλ) w [+ η y x when the margin is violated]
                let shrink = 1.0 - eta * lambda;
                for wj in w.iter_mut() {
                    *wj *= shrink;
                }
                if margin < 1.0 {
                    csr.row_axpy_into(i, eta * yi, w);
                    bias += eta * yi * 0.1; // smaller rate on the unregularized bias
                }
            }
        }
        LinearSvm::from_weights(w.clone(), bias)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util;
    use super::*;
    use proptest::prelude::*;
    use textproc::SparseVector;

    fn assert_bit_identical(a: &LinearSvm, b: &LinearSvm) {
        assert_eq!(a.weights().len(), b.weights().len());
        for (x, y) in a.weights().iter().zip(b.weights()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.bias().to_bits(), b.bias().to_bits());
    }

    #[test]
    fn csr_dcd_matches_scalar_bitwise() {
        let (xs, ys) = test_util::separable(150, 31);
        let trainer = LinearSvmTrainer::default();
        let scalar = trainer.train(&xs, &ys);
        let csr = CsrMatrix::from_vectors(&xs);
        let mut ctx = CsrLinearTrainer::new(&trainer, &csr);
        assert_bit_identical(&ctx.train(&ys), &scalar);
        // A second fit through the same (reused) scratch is identical too.
        assert_bit_identical(&ctx.train(&ys), &scalar);
    }

    #[test]
    fn csr_pegasos_matches_scalar_bitwise() {
        let (xs, ys) = test_util::separable(120, 32);
        let trainer = LinearSvmTrainer {
            solver: LinearSolver::Pegasos,
            max_iter: 30,
            ..Default::default()
        };
        let scalar = trainer.train(&xs, &ys);
        let csr = CsrMatrix::from_vectors(&xs);
        let mut ctx = CsrLinearTrainer::new(&trainer, &csr);
        assert_bit_identical(&ctx.train(&ys), &scalar);
    }

    #[test]
    fn csr_warm_matches_scalar_bitwise_including_small_problem_delegation() {
        let trainer = LinearSvmTrainer::default();
        // Large problem: real warm SGD.
        let (xs, ys) = test_util::separable(200, 33);
        let cold = trainer.train(&xs, &ys);
        let scalar_warm = trainer.train_warm(&xs, &ys, &cold);
        let csr = CsrMatrix::from_vectors(&xs);
        let mut ctx = CsrLinearTrainer::new(&trainer, &csr);
        assert_bit_identical(&ctx.train_warm(&ys, &cold), &scalar_warm);
        // Small problem: both paths must delegate to the cold solver.
        let (sx, sy) = test_util::separable(20, 34);
        let small_cold = trainer.train(&sx, &sy);
        let scalar_small = trainer.train_warm(&sx, &sy, &small_cold);
        let small_csr = CsrMatrix::from_vectors(&sx);
        let mut small_ctx = CsrLinearTrainer::new(&trainer, &small_csr);
        assert_bit_identical(&small_ctx.train_warm(&sy, &small_cold), &scalar_small);
    }

    #[test]
    fn interleaved_cold_and_warm_fits_share_one_context() {
        // One context must serve alternating cold/warm fits (as the one-vs-all
        // warm driver does when new tags are cold-trained among warm refits)
        // without the order caches cross-contaminating.
        let trainer = LinearSvmTrainer::default();
        let (xs, ys) = test_util::separable(150, 35);
        let flipped: Vec<bool> = ys.iter().map(|&b| !b).collect();
        let cold_a = trainer.train(&xs, &ys);
        let csr = CsrMatrix::from_vectors(&xs);
        let mut ctx = CsrLinearTrainer::new(&trainer, &csr);
        assert_bit_identical(&ctx.train(&ys), &cold_a);
        assert_bit_identical(
            &ctx.train_warm(&flipped, &cold_a),
            &trainer.train_warm(&xs, &flipped, &cold_a),
        );
        assert_bit_identical(&ctx.train(&flipped), &trainer.train(&xs, &flipped));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let trainer = LinearSvmTrainer::default();
        let csr = CsrMatrix::from_vectors(&[]);
        CsrLinearTrainer::new(&trainer, &csr).train(&[]);
    }

    #[test]
    fn order_stream_replays_the_scalar_shuffle_stream_across_the_cache_cap() {
        // Reference: the scalar solver's per-fit shuffle sequence.
        let n = 17usize;
        let passes = 12usize;
        let reference: Vec<Vec<usize>> = {
            let mut rng = StdRng::seed_from_u64(99);
            let mut order: Vec<usize> = (0..n).collect();
            (0..passes)
                .map(|_| {
                    order.shuffle(&mut rng);
                    order.clone()
                })
                .collect()
        };
        // A tiny cap forces the private-tail continuation mid-stream; two
        // consecutive fits must both replay the full reference sequence.
        let mut cache = OrderCache::with_cap(99, n, 4);
        for _fit in 0..2 {
            let mut stream = cache.stream();
            for expected in &reference {
                let got: Vec<usize> = stream.next_order().iter().map(|&i| i as usize).collect();
                assert_eq!(&got, expected);
            }
        }
        assert_eq!(cache.cached.len(), 4, "retention is bounded by the cap");
    }

    fn arb_dataset() -> impl Strategy<Value = (Vec<SparseVector>, Vec<bool>)> {
        prop::collection::vec(
            (
                prop::collection::vec((0u32..24, -2.0f64..2.0), 0..8),
                any::<bool>(),
            ),
            1..40,
        )
        .prop_map(|rows| {
            rows.into_iter()
                .map(|(pairs, label)| (SparseVector::from_pairs(pairs), label))
                .unzip()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn csr_trainer_equivalence_property(
            data in arb_dataset(),
            seed in 0u64..64,
            pegasos in any::<bool>(),
        ) {
            let (xs, ys) = data;
            let trainer = LinearSvmTrainer {
                seed,
                solver: if pegasos {
                    LinearSolver::Pegasos
                } else {
                    LinearSolver::DualCoordinateDescent
                },
                max_iter: 20,
                ..Default::default()
            };
            let scalar = trainer.train(&xs, &ys);
            let csr = CsrMatrix::from_vectors(&xs);
            let mut ctx = CsrLinearTrainer::new(&trainer, &csr);
            let fast = ctx.train(&ys);
            prop_assert_eq!(&scalar, &fast);
            for (a, b) in scalar.weights().iter().zip(fast.weights()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(scalar.bias().to_bits(), fast.bias().to_bits());
            // Warm refits stay equivalent as well (both may delegate to cold
            // on small n — the delegation thresholds are shared).
            let warm_scalar = trainer.train_warm(&xs, &ys, &scalar);
            let warm_fast = ctx.train_warm(&ys, &scalar);
            prop_assert_eq!(&warm_scalar, &warm_fast);
            prop_assert_eq!(warm_scalar.bias().to_bits(), warm_fast.bias().to_bits());
        }
    }
}
