//! Support vector machines.
//!
//! Two families are provided, matching the base classifiers of the two P2P
//! protocols in the paper:
//!
//! * [`LinearSvm`] — the "state-of-the-art linear SVM algorithm" PACE uses to
//!   reduce computation and communication cost. Trained with dual coordinate
//!   descent (Hsieh et al., 2008) or Pegasos-style stochastic sub-gradient
//!   descent.
//! * [`KernelSvm`] — the non-linear SVM each CEMPaR peer builds on its local
//!   training data, trained with a simplified SMO solver. Its support vectors
//!   are what is propagated to super-peers and cascaded.
//!
//! Both have a shared-storage training form for one-vs-all reductions:
//! [`CsrLinearTrainer`] drives every per-tag linear fit off one CSR arena
//! with tag-independent solver state hoisted out of the per-tag loop, and
//! [`KernelSvmTrainer::train_with_gram`] shares one precomputed Gram matrix
//! across tags. Both are bit-identical to the scalar entry points.

mod csr;
mod kernel_svm;
mod linear;

pub use csr::CsrLinearTrainer;
pub use kernel_svm::{gram_matrix, KernelSvm, KernelSvmTrainer, SupportVector};
pub use linear::{LinearSolver, LinearSvm, LinearSvmTrainer};

use textproc::SparseVector;

/// A trained binary classifier producing a signed decision value.
pub trait BinaryClassifier {
    /// Signed decision value; positive means the positive class.
    fn decision(&self, x: &SparseVector) -> f64;

    /// Hard prediction derived from the decision value.
    fn predict(&self, x: &SparseVector) -> bool {
        self.decision(x) >= 0.0
    }

    /// Approximate size in bytes when this model is sent over the network.
    fn wire_size(&self) -> usize;
}

/// Accuracy of a classifier on a labeled set (fraction of correct hard
/// predictions). Returns 1.0 on an empty set.
pub fn accuracy_on<C: BinaryClassifier>(model: &C, xs: &[SparseVector], ys: &[bool]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
    if xs.is_empty() {
        return 1.0;
    }
    let correct = xs
        .iter()
        .zip(ys)
        .filter(|(x, &y)| model.predict(x) == y)
        .count();
    correct as f64 / xs.len() as f64
}

#[cfg(test)]
pub(crate) mod test_util {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use textproc::SparseVector;

    /// Generates a linearly separable 2-D problem with some margin.
    pub fn separable(n: usize, seed: u64) -> (Vec<SparseVector>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.gen_bool(0.5);
            let offset = if y { 1.0 } else { -1.0 };
            let x0 = offset + rng.gen_range(-0.4..0.4);
            let x1 = offset + rng.gen_range(-0.4..0.4);
            xs.push(SparseVector::from_pairs([(0, x0), (1, x1)]));
            ys.push(y);
        }
        (xs, ys)
    }

    /// Generates the XOR problem (not linearly separable): positive iff the
    /// two coordinates have the same sign.
    pub fn xor(n: usize, seed: u64) -> (Vec<SparseVector>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let x1: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let jitter0 = rng.gen_range(-0.2..0.2);
            let jitter1 = rng.gen_range(-0.2..0.2);
            xs.push(SparseVector::from_pairs([
                (0, x0 + jitter0),
                (1, x1 + jitter1),
            ]));
            ys.push((x0 > 0.0) == (x1 > 0.0));
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub(f64);
    impl BinaryClassifier for Stub {
        fn decision(&self, _x: &SparseVector) -> f64 {
            self.0
        }
        fn wire_size(&self) -> usize {
            8
        }
    }

    #[test]
    fn default_predict_uses_sign_of_decision() {
        let x = SparseVector::new();
        assert!(Stub(0.5).predict(&x));
        assert!(Stub(0.0).predict(&x));
        assert!(!Stub(-0.1).predict(&x));
    }

    #[test]
    fn accuracy_on_empty_is_one() {
        assert_eq!(accuracy_on(&Stub(1.0), &[], &[]), 1.0);
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let xs = vec![SparseVector::new(), SparseVector::new()];
        let ys = vec![true, false];
        assert_eq!(accuracy_on(&Stub(1.0), &xs, &ys), 0.5);
    }
}
