//! Kernel SVM trained with a simplified SMO solver.
//!
//! CEMPaR's peers each construct "a non-linear SVM model using its local
//! training data"; the resulting support vectors are the only artifact that is
//! propagated (once) to a super-peer, where models are cascaded. This module
//! provides that local model and exposes its support vectors for the cascade.

use super::BinaryClassifier;
use crate::kernel::Kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use textproc::SparseVector;

/// A support vector retained by a trained [`KernelSvm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupportVector {
    /// The training vector.
    pub vector: SparseVector,
    /// Its binary label.
    pub label: bool,
    /// The dual coefficient `alpha` (always > 0 for a retained SV).
    pub alpha: f64,
}

impl SupportVector {
    /// Approximate bytes on the wire (document vector + label + alpha).
    pub fn wire_size(&self) -> usize {
        self.vector.wire_size() + 1 + std::mem::size_of::<f64>()
    }
}

/// Hyper-parameters for SMO training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelSvmTrainer {
    /// Soft-margin cost parameter `C`.
    pub c: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Maximum number of passes without any alpha change before stopping.
    pub max_passes: usize,
    /// Hard cap on optimization sweeps (protects against pathological data).
    pub max_iter: usize,
    /// RNG seed for the second-alpha choice.
    pub seed: u64,
}

impl Default for KernelSvmTrainer {
    fn default() -> Self {
        Self {
            c: 1.0,
            kernel: Kernel::default(),
            tol: 1e-3,
            max_passes: 5,
            max_iter: 200,
            seed: 13,
        }
    }
}

/// A trained kernel SVM: `decision(x) = Σ alpha_i y_i K(sv_i, x) + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSvm {
    support_vectors: Vec<SupportVector>,
    bias: f64,
    kernel: Kernel,
}

impl KernelSvm {
    /// Builds a model directly from support vectors (used by the cascade when a
    /// merged model is assembled from the SVs of several peers).
    pub fn from_support_vectors(
        support_vectors: Vec<SupportVector>,
        bias: f64,
        kernel: Kernel,
    ) -> Self {
        Self {
            support_vectors,
            bias,
            kernel,
        }
    }

    /// The retained support vectors.
    pub fn support_vectors(&self) -> &[SupportVector] {
        &self.support_vectors
    }

    /// Number of support vectors.
    pub fn num_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// The kernel this model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl BinaryClassifier for KernelSvm {
    fn decision(&self, x: &SparseVector) -> f64 {
        let mut sum = self.bias;
        for sv in &self.support_vectors {
            let y = if sv.label { 1.0 } else { -1.0 };
            sum += sv.alpha * y * self.kernel.eval(&sv.vector, x);
        }
        sum
    }

    fn wire_size(&self) -> usize {
        self.support_vectors
            .iter()
            .map(SupportVector::wire_size)
            .sum::<usize>()
            + std::mem::size_of::<f64>()
    }
}

impl KernelSvmTrainer {
    /// Creates a trainer with the given kernel and default settings.
    pub fn with_kernel(kernel: Kernel) -> Self {
        Self {
            kernel,
            ..Self::default()
        }
    }

    /// Trains a kernel SVM on `(xs, ys)` with simplified SMO.
    ///
    /// # Panics
    /// Panics when `xs` and `ys` have different lengths or are empty.
    pub fn train(&self, xs: &[SparseVector], ys: &[bool]) -> KernelSvm {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        assert!(!xs.is_empty(), "cannot train on an empty dataset");
        if xs.len() == 1 {
            return self.single_example_model(xs, ys);
        }
        // Precompute the kernel matrix; per-peer local datasets are small
        // (tens to a few hundred documents), so O(n²) memory is acceptable.
        let k = gram_matrix(self.kernel, xs);
        self.train_smo(xs, ys, &k)
    }

    /// [`Self::train`] against a caller-provided Gram matrix (row-major
    /// `n × n`, as [`gram_matrix`] builds it).
    ///
    /// The Gram matrix depends only on the kernel and the data — not on the
    /// labels — so a one-vs-all reduction over `T` tags can compute it once
    /// and share it across every per-tag fit instead of re-evaluating all
    /// `n²` kernel entries per tag ([`crate::multilabel::OneVsAllTrainer::train_kernel_shared`]).
    /// Given `gram == gram_matrix(self.kernel, xs)`, the trained model is
    /// bit-identical to [`Self::train`]'s.
    ///
    /// # Panics
    /// Panics when `xs` and `ys` have different lengths or are empty, or when
    /// `gram.len() != xs.len()²`.
    pub fn train_with_gram(&self, xs: &[SparseVector], ys: &[bool], gram: &[f64]) -> KernelSvm {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        assert!(!xs.is_empty(), "cannot train on an empty dataset");
        assert_eq!(gram.len(), xs.len() * xs.len(), "gram matrix must be n × n");
        if xs.len() == 1 {
            return self.single_example_model(xs, ys);
        }
        self.train_smo(xs, ys, gram)
    }

    /// SMO needs at least two points; a single example degenerates to a
    /// one-nearest-prototype decision around it.
    fn single_example_model(&self, xs: &[SparseVector], ys: &[bool]) -> KernelSvm {
        KernelSvm {
            support_vectors: vec![SupportVector {
                vector: xs[0].clone(),
                label: ys[0],
                alpha: 1.0,
            }],
            bias: 0.0,
            kernel: self.kernel,
        }
    }

    /// The simplified-SMO optimization loop over a precomputed Gram matrix.
    fn train_smo(&self, xs: &[SparseVector], ys: &[bool], k: &[f64]) -> KernelSvm {
        let n = xs.len();
        let y: Vec<f64> = ys.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let kij = |i: usize, j: usize| k[i * n + j];

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let decision = |alpha: &[f64], b: f64, idx: usize| -> f64 {
            let mut s = b;
            for i in 0..n {
                if alpha[i] != 0.0 {
                    s += alpha[i] * y[i] * kij(i, idx);
                }
            }
            s
        };

        let mut passes = 0;
        let mut iter = 0;
        while passes < self.max_passes && iter < self.max_iter {
            iter += 1;
            let mut num_changed = 0;
            for i in 0..n {
                let ei = decision(&alpha, b, i) - y[i];
                let violates_kkt = (y[i] * ei < -self.tol && alpha[i] < self.c)
                    || (y[i] * ei > self.tol && alpha[i] > 0.0);
                if !violates_kkt {
                    continue;
                }
                // Pick j != i at random (simplified SMO heuristic).
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = decision(&alpha, b, j) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    (
                        (aj_old - ai_old).max(0.0),
                        (self.c + aj_old - ai_old).min(self.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - self.c).max(0.0),
                        (ai_old + aj_old).min(self.c),
                    )
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * kij(i, j) - kij(i, i) - kij(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj_new = aj_old - y[j] * (ei - ej) / eta;
                aj_new = aj_new.clamp(lo, hi);
                if (aj_new - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai_new = ai_old + y[i] * y[j] * (aj_old - aj_new);
                alpha[i] = ai_new;
                alpha[j] = aj_new;

                let b1 = b
                    - ei
                    - y[i] * (ai_new - ai_old) * kij(i, i)
                    - y[j] * (aj_new - aj_old) * kij(i, j);
                let b2 = b
                    - ej
                    - y[i] * (ai_new - ai_old) * kij(i, j)
                    - y[j] * (aj_new - aj_old) * kij(j, j);
                b = if ai_new > 0.0 && ai_new < self.c {
                    b1
                } else if aj_new > 0.0 && aj_new < self.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                num_changed += 1;
            }
            if num_changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        let support_vectors = (0..n)
            .filter(|&i| alpha[i] > 1e-8)
            .map(|i| SupportVector {
                vector: xs[i].clone(),
                label: ys[i],
                alpha: alpha[i],
            })
            .collect();
        KernelSvm {
            support_vectors,
            bias: b,
            kernel: self.kernel,
        }
    }
}

/// Precomputes the symmetric Gram matrix `K[i·n + j] = K(x_i, x_j)` in
/// row-major order, evaluating each `(i, j ≥ i)` pair once — the exact fill
/// order (and therefore the exact bits) the SMO trainer's inline
/// precomputation used, hoisted out so label-independent consumers (the
/// one-vs-all reduction) can share one matrix across tags.
pub fn gram_matrix(kernel: Kernel, xs: &[SparseVector]) -> Vec<f64> {
    let n = xs.len();
    let mut k = vec![0.0; n * n];
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval(&xs[i], &xs[j]);
            k[i * n + j] = v;
            k[j * n + i] = v;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::super::{accuracy_on, test_util};
    use super::*;

    #[test]
    fn rbf_svm_solves_xor() {
        let (xs, ys) = test_util::xor(120, 11);
        let trainer = KernelSvmTrainer {
            kernel: Kernel::Rbf { gamma: 1.0 },
            c: 10.0,
            ..Default::default()
        };
        let model = trainer.train(&xs, &ys);
        assert!(
            accuracy_on(&model, &xs, &ys) > 0.9,
            "accuracy {}",
            accuracy_on(&model, &xs, &ys)
        );
    }

    #[test]
    fn linear_kernel_separates_separable_data() {
        let (xs, ys) = test_util::separable(120, 12);
        let trainer = KernelSvmTrainer::with_kernel(Kernel::Linear);
        let model = trainer.train(&xs, &ys);
        assert!(accuracy_on(&model, &xs, &ys) > 0.95);
    }

    #[test]
    fn support_vectors_are_a_subset_of_training_data() {
        let (xs, ys) = test_util::separable(80, 13);
        let model = KernelSvmTrainer::default().train(&xs, &ys);
        assert!(model.num_support_vectors() > 0);
        assert!(model.num_support_vectors() <= xs.len());
        for sv in model.support_vectors() {
            assert!(sv.alpha > 0.0);
            assert!(xs.contains(&sv.vector));
        }
    }

    #[test]
    fn generalizes_to_held_out_xor_points() {
        let (xs, ys) = test_util::xor(240, 14);
        let (train_x, test_x) = xs.split_at(160);
        let (train_y, test_y) = ys.split_at(160);
        let trainer = KernelSvmTrainer {
            kernel: Kernel::Rbf { gamma: 1.0 },
            c: 10.0,
            ..Default::default()
        };
        let model = trainer.train(train_x, train_y);
        assert!(accuracy_on(&model, test_x, test_y) > 0.85);
    }

    #[test]
    fn from_support_vectors_roundtrip() {
        let (xs, ys) = test_util::separable(60, 15);
        let model = KernelSvmTrainer::default().train(&xs, &ys);
        let rebuilt = KernelSvm::from_support_vectors(
            model.support_vectors().to_vec(),
            model.bias(),
            model.kernel(),
        );
        for x in &xs {
            assert!((model.decision(x) - rebuilt.decision(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn wire_size_grows_with_support_vectors() {
        let (xs, ys) = test_util::separable(60, 16);
        let model = KernelSvmTrainer::default().train(&xs, &ys);
        assert!(model.wire_size() >= model.num_support_vectors() * 9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        KernelSvmTrainer::default().train(&[], &[]);
    }

    #[test]
    fn shared_gram_training_is_bit_identical_to_inline_precomputation() {
        let (xs, ys) = test_util::xor(80, 17);
        let trainer = KernelSvmTrainer {
            kernel: Kernel::Rbf { gamma: 1.0 },
            ..Default::default()
        };
        let inline = trainer.train(&xs, &ys);
        let gram = gram_matrix(trainer.kernel, &xs);
        let shared = trainer.train_with_gram(&xs, &ys, &gram);
        assert_eq!(inline.bias().to_bits(), shared.bias().to_bits());
        assert_eq!(inline.num_support_vectors(), shared.num_support_vectors());
        for (a, b) in inline
            .support_vectors()
            .iter()
            .zip(shared.support_vectors())
        {
            assert_eq!(a.vector, b.vector);
            assert_eq!(a.label, b.label);
            assert_eq!(a.alpha.to_bits(), b.alpha.to_bits());
        }
        // The flipped label mask trains a different model off the same Gram.
        let flipped: Vec<bool> = ys.iter().map(|&b| !b).collect();
        let other = trainer.train_with_gram(&xs, &flipped, &gram);
        assert_eq!(
            other.bias().to_bits(),
            trainer.train(&xs, &flipped).bias().to_bits()
        );
        // Single-example degenerate case goes through the same prototype path.
        let one = trainer.train_with_gram(&xs[..1], &ys[..1], &gram[..1]);
        assert_eq!(one.num_support_vectors(), 1);
    }
}
