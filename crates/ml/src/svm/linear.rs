//! Linear SVM trained with dual coordinate descent or Pegasos.
//!
//! PACE uses "the state-of-the-art linear SVM algorithm to reduce computation
//! and communication cost": a linear model is a single dense weight vector, so
//! propagating it to other peers costs `O(m)` instead of `O(#SV · m)`.

use super::BinaryClassifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use textproc::SparseVector;

/// Which optimization algorithm trains the linear SVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinearSolver {
    /// Dual coordinate descent for L1-loss (hinge) SVM — Hsieh et al. 2008,
    /// the LIBLINEAR default. Deterministic given the seed, converges fast.
    DualCoordinateDescent,
    /// Pegasos primal stochastic sub-gradient descent (Shalev-Shwartz et al.).
    Pegasos,
}

/// Hyper-parameters for linear SVM training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvmTrainer {
    /// Soft-margin cost parameter `C` (dual) / `1/(λ·n)` (Pegasos).
    pub c: f64,
    /// Maximum number of passes over the data.
    pub max_iter: usize,
    /// Convergence tolerance on the projected gradient (dual solver).
    pub tol: f64,
    /// Optimization algorithm.
    pub solver: LinearSolver,
    /// RNG seed controlling example shuffling.
    pub seed: u64,
    /// Number of SGD passes run by [`Self::train_warm`]. Warm-starting from an
    /// existing weight vector converges in far fewer passes than a cold fit,
    /// which is what makes the incremental training path cheap.
    #[serde(default = "default_warm_passes")]
    pub warm_passes: usize,
    /// Below this many examples [`Self::train_warm`] delegates to the cold
    /// [`Self::train`]: on tiny problems the exact dual solve is itself cheap
    /// and strictly more accurate than a handful of SGD steps, so the warm
    /// path only pays off on collections at least this large.
    #[serde(default = "default_warm_min_examples")]
    pub warm_min_examples: usize,
}

fn default_warm_passes() -> usize {
    8
}

fn default_warm_min_examples() -> usize {
    64
}

impl Default for LinearSvmTrainer {
    fn default() -> Self {
        Self {
            c: 1.0,
            max_iter: 100,
            tol: 1e-4,
            solver: LinearSolver::DualCoordinateDescent,
            seed: 7,
            warm_passes: default_warm_passes(),
            warm_min_examples: default_warm_min_examples(),
        }
    }
}

/// A trained linear SVM: `decision(x) = w · x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Builds a model directly from a dense weight vector and bias (used by
    /// the batched-scoring equivalence tests and model deserialization).
    pub fn from_weights(weights: Vec<f64>, bias: f64) -> Self {
        Self { weights, bias }
    }

    /// The dense weight vector `w`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of non-zero weights (a proxy for model sparsity).
    pub fn nonzero_weights(&self) -> usize {
        self.weights.iter().filter(|w| **w != 0.0).count()
    }
}

impl BinaryClassifier for LinearSvm {
    fn decision(&self, x: &SparseVector) -> f64 {
        x.dot_dense(&self.weights) + self.bias
    }

    fn wire_size(&self) -> usize {
        // A dense weight vector plus the bias. In practice LIBLINEAR-style
        // models are shipped sparsely; we charge for the non-zero entries,
        // matching how PACE counts model transfer cost.
        self.nonzero_weights() * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>())
            + std::mem::size_of::<f64>()
    }
}

impl LinearSvmTrainer {
    /// Creates a trainer with the given cost parameter and default settings.
    pub fn with_c(c: f64) -> Self {
        Self {
            c,
            ..Self::default()
        }
    }

    /// Trains a linear SVM on `(xs, ys)`.
    ///
    /// # Panics
    /// Panics when `xs` and `ys` have different lengths or are empty.
    pub fn train(&self, xs: &[SparseVector], ys: &[bool]) -> LinearSvm {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        assert!(!xs.is_empty(), "cannot train on an empty dataset");
        let dim = xs
            .iter()
            .map(SparseVector::dim_lower_bound)
            .max()
            .unwrap_or(0);
        match self.solver {
            LinearSolver::DualCoordinateDescent => self.train_dcd(xs, ys, dim),
            LinearSolver::Pegasos => self.train_pegasos(xs, ys, dim),
        }
    }

    /// Incrementally refits a model on a (typically grown) dataset: primal
    /// stochastic sub-gradient descent starts from `warm`'s weight vector and
    /// runs only [`Self::warm_passes`] passes instead of a full cold
    /// optimization.
    ///
    /// This is the warm-start contract the streaming session layer relies on:
    /// the result is *not* bit-identical to a cold [`Self::train`] on the same
    /// data — it trades exact re-optimization for an `O(warm_passes · nnz)`
    /// update — but the accuracy gap is bounded by the session regression
    /// suite (incremental within 5 % of the full-retrain reference).
    /// Deterministic for a fixed `(seed, warm, data)`.
    ///
    /// # Panics
    /// Panics when `xs` and `ys` have different lengths or are empty.
    pub fn train_warm(&self, xs: &[SparseVector], ys: &[bool], warm: &LinearSvm) -> LinearSvm {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        assert!(!xs.is_empty(), "cannot train on an empty dataset");
        if xs.len() < self.warm_min_examples {
            // Tiny problem: the exact cold solve is cheaper than SGD steps
            // worth taking and has no approximation gap.
            return self.train(xs, ys);
        }
        let dim = xs
            .iter()
            .map(SparseVector::dim_lower_bound)
            .max()
            .unwrap_or(0)
            .max(warm.weights.len());
        let n = xs.len();
        let lambda = 1.0 / (self.c * n as f64);
        let mut w = warm.weights.clone();
        w.resize(dim, 0.0);
        let mut bias = warm.bias;
        let mut rng = StdRng::seed_from_u64(self.seed ^ super::csr::WARM_SEED_XOR);
        let mut order: Vec<usize> = (0..n).collect();
        // Start the Pegasos clock one full epoch in: the warm weights stand in
        // for a completed cold pass, so the early (large) learning rates do
        // not wipe out the starting point.
        let mut t = n;
        // The regularization shrink multiplies the *whole* weight vector each
        // step; applying it lazily as a scalar (`w_true = scale · w`) keeps
        // every step O(nnz) instead of O(dim). Over the whole run the scale
        // only decays to ≈ 1/(1 + warm_passes), so no re-materialization
        // guard is needed beyond a defensive floor.
        let mut scale = 1.0f64;
        for _pass in 0..self.warm_passes.max(1) {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let y = if ys[i] { 1.0 } else { -1.0 };
                let margin = y * (scale * xs[i].dot_dense(&w) + bias);
                scale *= 1.0 - eta * lambda;
                if scale < 1e-9 {
                    for wj in &mut w {
                        *wj *= scale;
                    }
                    scale = 1.0;
                }
                if margin < 1.0 {
                    let step = eta * y / scale;
                    for (idx, v) in xs[i].iter() {
                        w[idx as usize] += step * v;
                    }
                    bias += eta * y * 0.1;
                }
            }
        }
        for wj in &mut w {
            *wj *= scale;
        }
        LinearSvm { weights: w, bias }
    }

    /// Dual coordinate descent for the L1-loss SVM with an augmented bias
    /// feature (a constant 1.0 appended to every example).
    fn train_dcd(&self, xs: &[SparseVector], ys: &[bool], dim: usize) -> LinearSvm {
        let n = xs.len();
        let bias_index = dim; // virtual constant feature
        let mut w = vec![0.0; dim + 1];
        let mut alpha = vec![0.0; n];
        // Q_ii = x_i·x_i + 1 (for the bias feature).
        let q: Vec<f64> = xs.iter().map(|x| x.norm_sq() + 1.0).collect();
        let y: Vec<f64> = ys.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);

        for _pass in 0..self.max_iter {
            order.shuffle(&mut rng);
            let mut max_pg: f64 = 0.0;
            for &i in &order {
                if q[i] == 0.0 {
                    continue;
                }
                // G = y_i * (w·x_i + w_bias) - 1
                let wx = xs[i].dot_dense(&w[..dim]) + w[bias_index];
                let g = y[i] * wx - 1.0;
                // Projected gradient.
                let pg = if alpha[i] == 0.0 {
                    g.min(0.0)
                } else if alpha[i] >= self.c {
                    g.max(0.0)
                } else {
                    g
                };
                max_pg = max_pg.max(pg.abs());
                if pg.abs() > 1e-12 {
                    let old = alpha[i];
                    alpha[i] = (old - g / q[i]).clamp(0.0, self.c);
                    let delta = (alpha[i] - old) * y[i];
                    if delta != 0.0 {
                        for (idx, v) in xs[i].iter() {
                            w[idx as usize] += delta * v;
                        }
                        w[bias_index] += delta;
                    }
                }
            }
            if max_pg < self.tol {
                break;
            }
        }
        let bias = w[bias_index];
        w.truncate(dim);
        LinearSvm { weights: w, bias }
    }

    /// Pegasos: primal stochastic sub-gradient descent on the hinge loss with
    /// L2 regularization `λ = 1 / (C · n)`.
    fn train_pegasos(&self, xs: &[SparseVector], ys: &[bool], dim: usize) -> LinearSvm {
        let n = xs.len();
        let lambda = 1.0 / (self.c * n as f64);
        let mut w = vec![0.0; dim];
        let mut bias = 0.0;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut t: usize = 0;
        for _pass in 0..self.max_iter {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let y = if ys[i] { 1.0 } else { -1.0 };
                let margin = y * (xs[i].dot_dense(&w) + bias);
                // w ← (1 - ηλ) w [+ η y x when the margin is violated]
                let shrink = 1.0 - eta * lambda;
                for wj in &mut w {
                    *wj *= shrink;
                }
                if margin < 1.0 {
                    for (idx, v) in xs[i].iter() {
                        w[idx as usize] += eta * y * v;
                    }
                    bias += eta * y * 0.1; // smaller learning rate on the (unregularized) bias
                }
            }
        }
        LinearSvm { weights: w, bias }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{accuracy_on, test_util};
    use super::*;

    #[test]
    fn dcd_separates_linearly_separable_data() {
        let (xs, ys) = test_util::separable(200, 1);
        let model = LinearSvmTrainer::default().train(&xs, &ys);
        assert!(accuracy_on(&model, &xs, &ys) > 0.97);
    }

    #[test]
    fn pegasos_separates_linearly_separable_data() {
        let (xs, ys) = test_util::separable(200, 2);
        let trainer = LinearSvmTrainer {
            solver: LinearSolver::Pegasos,
            max_iter: 50,
            ..Default::default()
        };
        let model = trainer.train(&xs, &ys);
        assert!(accuracy_on(&model, &xs, &ys) > 0.95);
    }

    #[test]
    fn generalizes_to_unseen_points() {
        let (xs, ys) = test_util::separable(300, 3);
        let (train_x, test_x) = xs.split_at(200);
        let (train_y, test_y) = ys.split_at(200);
        let model = LinearSvmTrainer::default().train(train_x, train_y);
        assert!(accuracy_on(&model, test_x, test_y) > 0.95);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let (xs, ys) = test_util::separable(100, 4);
        let a = LinearSvmTrainer::default().train(&xs, &ys);
        let b = LinearSvmTrainer::default().train(&xs, &ys);
        assert_eq!(a, b);
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let xs = vec![
            SparseVector::from_pairs([(0, 1.0)]),
            SparseVector::from_pairs([(0, 2.0)]),
        ];
        let ys = vec![true, true];
        let model = LinearSvmTrainer::default().train(&xs, &ys);
        assert!(model.predict(&xs[0]));
        assert!(model.predict(&xs[1]));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        LinearSvmTrainer::default().train(&[], &[]);
    }

    #[test]
    fn wire_size_reflects_sparsity() {
        let (xs, ys) = test_util::separable(50, 5);
        let model = LinearSvmTrainer::default().train(&xs, &ys);
        assert!(model.wire_size() >= std::mem::size_of::<f64>());
        assert!(model.wire_size() <= (2 + 1) * 12 + 8 + 12);
    }

    #[test]
    fn warm_start_preserves_accuracy_on_grown_data() {
        let (xs, ys) = test_util::separable(300, 8);
        let (old_x, new_x) = xs.split_at(200);
        let (old_y, new_y) = ys.split_at(200);
        let trainer = LinearSvmTrainer::default();
        let cold = trainer.train(old_x, old_y);
        // Fold the new examples in by warm-starting on the full set.
        let warm = trainer.train_warm(&xs, &ys, &cold);
        assert!(accuracy_on(&warm, &xs, &ys) > 0.93);
        assert!(accuracy_on(&warm, new_x, new_y) > 0.9);
    }

    #[test]
    fn warm_start_is_deterministic_and_learns_new_structure() {
        // A cold model that knows nothing about feature 3 picks up a new
        // class concentrated there after a warm refit.
        let (mut xs, mut ys) = test_util::separable(120, 9);
        let cold = LinearSvmTrainer::default().train(&xs, &ys);
        for i in 0..40 {
            xs.push(SparseVector::from_pairs([(3, 1.0 + 0.01 * i as f64)]));
            ys.push(true);
        }
        let trainer = LinearSvmTrainer::default();
        let a = trainer.train_warm(&xs, &ys, &cold);
        let b = trainer.train_warm(&xs, &ys, &cold);
        assert_eq!(a, b, "warm fit must be deterministic for a seed");
        assert!(a.predict(&SparseVector::from_pairs([(3, 1.2)])));
    }

    #[test]
    fn c_controls_margin_softness() {
        // With tiny C the model barely fits the data; with large C it fits it
        // well. Just assert training succeeds and large C is at least as good.
        let (xs, ys) = test_util::separable(100, 6);
        let loose = LinearSvmTrainer::with_c(1e-4).train(&xs, &ys);
        let tight = LinearSvmTrainer::with_c(10.0).train(&xs, &ys);
        assert!(accuracy_on(&tight, &xs, &ys) >= accuracy_on(&loose, &xs, &ys));
    }
}
