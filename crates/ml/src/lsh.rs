//! Locality-sensitive hashing for cosine similarity (random hyperplanes).
//!
//! PACE peers "index the models using the centroids (based on locality
//! sensitive hashing)"; at prediction time "the algorithm retrieves the top k
//! 'nearest' models (with respect to the distance between the test data and
//! the models' centroids) from the index" (§2). This module provides that
//! index: items are keyed by a sparse centroid, signatures are sign patterns
//! of random-hyperplane projections, and queries return the top-k items by
//! exact distance among hash-collision candidates (falling back to scanning
//! when too few candidates collide, so recall never collapses).
//!
//! To avoid materializing dense random hyperplanes over a vocabulary-sized
//! space, hyperplane components are derived on the fly from a deterministic
//! 64-bit mix of `(seed, bit index, feature index)`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use textproc::SparseVector;

/// Configuration of the random-hyperplane LSH index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshConfig {
    /// Number of signature bits per band.
    pub bits_per_band: usize,
    /// Number of independent bands (hash tables).
    pub num_bands: usize,
    /// Seed from which all hyperplanes are derived.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            bits_per_band: 8,
            num_bands: 4,
            seed: 2010,
        }
    }
}

/// An LSH index mapping sparse key vectors to items of type `T`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshIndex<T> {
    config: LshConfig,
    /// One hash table per band: band signature → entry indices.
    tables: Vec<HashMap<u64, Vec<usize>>>,
    entries: Vec<(SparseVector, T)>,
    /// Cached `‖key‖²` per entry, for the batched query path.
    norms_sq: Vec<f64>,
    /// Inverted postings over key features: feature → `(entry, value)`.
    /// Lets [`Self::query_batched`] compute every key dot product in one
    /// pass over the query's nonzeros instead of one merge-join per entry.
    postings: HashMap<u32, Vec<(u32, f64)>>,
    /// Tombstones: `live[i] == false` hides entry `i` from every query.
    /// Entries are append-only (hash tables and postings hold stable
    /// indices), so replacing an item's keys retires the old entries instead
    /// of removing them; see [`Self::retire_matching`].
    live: Vec<bool>,
    /// Number of live entries.
    num_live: usize,
}

impl<T> LshIndex<T> {
    /// Creates an empty index.
    pub fn new(config: LshConfig) -> Self {
        let tables = (0..config.num_bands).map(|_| HashMap::new()).collect();
        Self {
            config,
            tables,
            entries: Vec::new(),
            norms_sq: Vec::new(),
            postings: HashMap::new(),
            live: Vec::new(),
            num_live: 0,
        }
    }

    /// Number of indexed (live) items.
    pub fn len(&self) -> usize {
        self.num_live
    }

    /// Whether the index has no live items.
    pub fn is_empty(&self) -> bool {
        self.num_live == 0
    }

    /// The configuration in use.
    pub fn config(&self) -> &LshConfig {
        &self.config
    }

    /// Inserts an item keyed by `key`.
    pub fn insert(&mut self, key: SparseVector, item: T) {
        let idx = self.entries.len();
        for band in 0..self.config.num_bands {
            let sig = self.band_signature(&key, band);
            self.tables[band].entry(sig).or_default().push(idx);
        }
        self.norms_sq.push(key.norm_sq());
        for (feature, value) in key.iter() {
            self.postings
                .entry(feature)
                .or_default()
                .push((idx as u32, value));
        }
        self.entries.push((key, item));
        self.live.push(true);
        self.num_live += 1;
    }

    /// Retires every live entry whose item matches `pred` (tombstoning — the
    /// entry keeps its index but disappears from all queries). This is how an
    /// item whose keys changed is replaced: retire the old entries, insert
    /// the new ones. Returns the number of entries retired.
    ///
    /// When tombstones start to dominate, the index compacts itself (live
    /// entries are re-inserted in their original relative order), so a
    /// long-running stream of replacements keeps query cost proportional to
    /// the *live* entry count, not the all-time insert count.
    pub fn retire_matching<F: Fn(&T) -> bool>(&mut self, pred: F) -> usize {
        let mut retired = 0;
        for (i, (_, item)) in self.entries.iter().enumerate() {
            if self.live[i] && pred(item) {
                self.live[i] = false;
                self.num_live -= 1;
                retired += 1;
            }
        }
        let dead = self.entries.len() - self.num_live;
        if dead > self.num_live.max(16) {
            self.compact();
        }
        retired
    }

    /// Rebuilds the index from its live entries only, dropping tombstones
    /// from the hash tables, postings and entry store. Live entries keep
    /// their relative order, so query tie-breaking is unchanged.
    fn compact(&mut self) {
        let old_entries = std::mem::take(&mut self.entries);
        let old_live = std::mem::take(&mut self.live);
        self.tables = (0..self.config.num_bands).map(|_| HashMap::new()).collect();
        self.norms_sq.clear();
        self.postings.clear();
        self.num_live = 0;
        for ((key, item), alive) in old_entries.into_iter().zip(old_live) {
            if alive {
                self.insert(key, item);
            }
        }
    }

    /// Returns the indices of live candidate entries colliding with `query`
    /// in at least one band.
    fn candidates(&self, query: &SparseVector) -> Vec<usize> {
        let mut seen = vec![false; self.entries.len()];
        let mut out = Vec::new();
        for band in 0..self.config.num_bands {
            let sig = self.band_signature(query, band);
            if let Some(list) = self.tables[band].get(&sig) {
                for &idx in list {
                    if self.live[idx] && !seen[idx] {
                        seen[idx] = true;
                        out.push(idx);
                    }
                }
            }
        }
        out
    }

    /// Returns up to `k` items nearest to `query` (by Euclidean distance of the
    /// key vectors), preferring LSH candidates and falling back to a full scan
    /// when fewer than `k` candidates collide.
    pub fn query(&self, query: &SparseVector, k: usize) -> Vec<(&T, f64)> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut candidates = self.candidates(query);
        if candidates.len() < k {
            candidates = (0..self.entries.len()).filter(|&i| self.live[i]).collect();
        }
        let mut scored: Vec<(usize, f64)> = candidates
            .into_iter()
            .map(|i| (i, self.entries[i].0.distance(query)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .take(k)
            .map(|(i, d)| (&self.entries[i].1, d))
            .collect()
    }

    /// Batched variant of [`Self::query`], returning **identical** results.
    ///
    /// Differences are purely in evaluation strategy: entry norms are read
    /// from the cache instead of recomputed, the query norm is computed once,
    /// and when the candidate shortfall forces the full scan the dot products
    /// of *all* entries are accumulated in one pass over the query's nonzeros
    /// through the inverted postings (the same CSR scatter the batched tag
    /// scorer uses) instead of one merge-join per entry. Every per-entry sum
    /// adds the same intersection terms in the same ascending-feature order
    /// as `SparseVector::dot`, so the distances — and therefore the ranking —
    /// are bit-for-bit those of the scalar query.
    pub fn query_batched(&self, query: &SparseVector, k: usize) -> Vec<(&T, f64)> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        let q_norm_sq = query.norm_sq();
        let distance =
            |i: usize, dot: f64| (self.norms_sq[i] + q_norm_sq - 2.0 * dot).max(0.0).sqrt();
        let candidates = self.candidates(query);
        let mut scored: Vec<(usize, f64)> = if candidates.len() < k {
            let mut dots = vec![0.0f64; self.entries.len()];
            for (feature, qv) in query.iter() {
                if let Some(column) = self.postings.get(&feature) {
                    for &(i, cv) in column {
                        dots[i as usize] += cv * qv;
                    }
                }
            }
            dots.into_iter()
                .enumerate()
                .filter(|&(i, _)| self.live[i])
                .map(|(i, dot)| (i, distance(i, dot)))
                .collect()
        } else {
            candidates
                .into_iter()
                .map(|i| (i, distance(i, self.entries[i].0.dot(query))))
                .collect()
        };
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .take(k)
            .map(|(i, d)| (&self.entries[i].1, d))
            .collect()
    }

    /// Exact (brute force) top-k query, for testing recall and the LSH-off
    /// ablation.
    pub fn query_exact(&self, query: &SparseVector, k: usize) -> Vec<(&T, f64)> {
        let mut scored: Vec<(usize, f64)> = (0..self.entries.len())
            .filter(|&i| self.live[i])
            .map(|i| (i, self.entries[i].0.distance(query)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .take(k)
            .map(|(i, d)| (&self.entries[i].1, d))
            .collect()
    }

    /// The signature of `v` in the given band.
    fn band_signature(&self, v: &SparseVector, band: usize) -> u64 {
        let mut sig = 0u64;
        for bit in 0..self.config.bits_per_band {
            if self.project(v, band, bit) >= 0.0 {
                sig |= 1 << bit;
            }
        }
        sig
    }

    /// Signed projection of `v` onto the pseudo-random hyperplane `(band, bit)`.
    fn project(&self, v: &SparseVector, band: usize, bit: usize) -> f64 {
        let plane_id = (band as u64) << 32 | bit as u64;
        v.iter()
            .map(|(idx, val)| hyperplane_component(self.config.seed, plane_id, idx) * val)
            .sum()
    }

    /// Full signature of a vector across all bands (useful for diagnostics).
    pub fn signature(&self, v: &SparseVector) -> Vec<u64> {
        (0..self.config.num_bands)
            .map(|b| self.band_signature(v, b))
            .collect()
    }
}

/// Deterministic pseudo-random hyperplane component in [-1, 1), derived from
/// (seed, hyperplane id, feature index) via a 64-bit finalizer (splitmix64).
fn hyperplane_component(seed: u64, plane_id: u64, feature: u32) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(plane_id)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(feature as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map to [-1, 1).
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(rng: &mut StdRng, dim: u32, nnz: usize) -> SparseVector {
        SparseVector::from_pairs(
            (0..nnz).map(|_| (rng.gen_range(0..dim), rng.gen_range(-1.0..1.0))),
        )
    }

    #[test]
    fn signatures_are_deterministic() {
        let idx = LshIndex::<u32>::new(LshConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let v = random_vec(&mut rng, 100, 10);
        assert_eq!(idx.signature(&v), idx.signature(&v));
    }

    #[test]
    fn identical_vectors_always_collide() {
        let mut idx = LshIndex::new(LshConfig::default());
        let v = SparseVector::from_pairs([(0, 1.0), (5, -2.0)]);
        idx.insert(v.clone(), "a");
        let hits = idx.query(&v, 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].0, "a");
        assert!(hits[0].1 < 1e-12);
    }

    #[test]
    fn query_returns_nearest_items() {
        let mut idx = LshIndex::new(LshConfig::default());
        for i in 0..20u32 {
            idx.insert(SparseVector::from_pairs([(0, i as f64)]), i);
        }
        let hits = idx.query(&SparseVector::from_pairs([(0, 7.2)]), 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(*hits[0].0, 7);
    }

    #[test]
    fn retired_entries_disappear_from_every_query_path() {
        let mut idx = LshIndex::new(LshConfig::default());
        for i in 0..10u32 {
            idx.insert(SparseVector::from_pairs([(0, i as f64)]), i);
        }
        assert_eq!(idx.len(), 10);
        // Replace item 3: retire its old key, insert a new one far away.
        let retired = idx.retire_matching(|&item| item == 3);
        assert_eq!(retired, 1);
        assert_eq!(idx.len(), 9);
        idx.insert(SparseVector::from_pairs([(0, 100.0)]), 3);
        let probe = SparseVector::from_pairs([(0, 3.1)]);
        for hits in [
            idx.query(&probe, 3),
            idx.query_batched(&probe, 3),
            idx.query_exact(&probe, 3),
        ] {
            // The nearest live entries are 3's neighbours, not its old key.
            assert!(
                hits.iter().all(|(&item, d)| item != 3 || *d > 50.0),
                "stale key of item 3 still reachable: {:?}",
                hits.iter().map(|(i, d)| (**i, *d)).collect::<Vec<_>>()
            );
        }
        // query and query_batched still agree bit-for-bit with tombstones.
        let a: Vec<(u32, f64)> = idx
            .query(&probe, 5)
            .into_iter()
            .map(|(i, d)| (*i, d))
            .collect();
        let b: Vec<(u32, f64)> = idx
            .query_batched(&probe, 5)
            .into_iter()
            .map(|(i, d)| (*i, d))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_replacement_compacts_instead_of_accumulating_tombstones() {
        let mut idx = LshIndex::new(LshConfig::default());
        for i in 0..8u32 {
            idx.insert(SparseVector::from_pairs([(0, i as f64)]), i);
        }
        // Replace item 0's key many times, as incremental re-propagation does.
        for round in 0..100 {
            idx.retire_matching(|&item| item == 0);
            idx.insert(SparseVector::from_pairs([(0, 0.1 * round as f64)]), 0);
        }
        assert_eq!(idx.len(), 8);
        // Compaction bounds the backing store: dead entries never exceed the
        // live count by more than the compaction slack.
        assert!(
            idx.entries.len() <= 2 * idx.len() + 16,
            "tombstones accumulated: {} entries for {} live",
            idx.entries.len(),
            idx.len()
        );
        // Queries still see exactly the live set.
        let hits = idx.query_exact(&SparseVector::from_pairs([(0, 3.0)]), 8);
        assert_eq!(hits.len(), 8);
    }

    #[test]
    fn falls_back_to_scan_when_no_candidates() {
        // A single far-away item may not collide, but the fallback must find it.
        let mut idx = LshIndex::new(LshConfig {
            bits_per_band: 16,
            num_bands: 1,
            seed: 3,
        });
        idx.insert(SparseVector::from_pairs([(9, 100.0)]), "far");
        let hits = idx.query(&SparseVector::from_pairs([(0, 1.0)]), 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn lsh_topk_matches_exact_topk_reasonably() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut idx = LshIndex::new(LshConfig::default());
        let items: Vec<SparseVector> = (0..200).map(|_| random_vec(&mut rng, 50, 8)).collect();
        for (i, v) in items.iter().enumerate() {
            idx.insert(v.clone(), i);
        }
        let mut overlap = 0usize;
        let queries: Vec<SparseVector> = (0..20).map(|_| random_vec(&mut rng, 50, 8)).collect();
        for q in &queries {
            let approx: Vec<usize> = idx.query(q, 5).into_iter().map(|(i, _)| *i).collect();
            let exact: Vec<usize> = idx.query_exact(q, 5).into_iter().map(|(i, _)| *i).collect();
            overlap += approx.iter().filter(|i| exact.contains(i)).count();
        }
        // At least half of the exact top-5 should be recovered on average.
        assert!(overlap >= 50, "overlap {overlap}");
    }

    #[test]
    fn batched_query_is_identical_to_scalar_query() {
        let mut rng = StdRng::seed_from_u64(9);
        // Small bucket width forces both the candidate path and (with large k)
        // the full-scan fallback to be exercised.
        let mut idx = LshIndex::new(LshConfig::default());
        let items: Vec<SparseVector> = (0..150).map(|_| random_vec(&mut rng, 60, 12)).collect();
        for (i, v) in items.iter().enumerate() {
            idx.insert(v.clone(), i);
        }
        for _ in 0..30 {
            let q = random_vec(&mut rng, 60, 10);
            for k in [1, 5, 40, 200] {
                let scalar: Vec<(usize, u64)> = idx
                    .query(&q, k)
                    .into_iter()
                    .map(|(i, d)| (*i, d.to_bits()))
                    .collect();
                let batched: Vec<(usize, u64)> = idx
                    .query_batched(&q, k)
                    .into_iter()
                    .map(|(i, d)| (*i, d.to_bits()))
                    .collect();
                assert_eq!(scalar, batched, "k = {k}");
            }
        }
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = LshIndex::<u32>::new(LshConfig::default());
        assert!(idx
            .query(&SparseVector::from_pairs([(0, 1.0)]), 3)
            .is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn k_zero_returns_nothing() {
        let mut idx = LshIndex::new(LshConfig::default());
        idx.insert(SparseVector::from_pairs([(0, 1.0)]), 1);
        assert!(idx
            .query(&SparseVector::from_pairs([(0, 1.0)]), 0)
            .is_empty());
    }

    #[test]
    fn similar_vectors_share_more_signature_bits_than_dissimilar() {
        let idx = LshIndex::<u32>::new(LshConfig {
            bits_per_band: 32,
            num_bands: 1,
            seed: 7,
        });
        let a = SparseVector::from_pairs((0..20).map(|i| (i, 1.0)));
        let near = SparseVector::from_pairs((0..20).map(|i| (i, if i == 0 { 0.9 } else { 1.0 })));
        let far =
            SparseVector::from_pairs((0..20).map(|i| (i, if i % 2 == 0 { -1.0 } else { 1.0 })));
        let sig = |v: &SparseVector| idx.signature(v)[0];
        let hamming = |x: u64, y: u64| (x ^ y).count_ones();
        assert!(hamming(sig(&a), sig(&near)) < hamming(sig(&a), sig(&far)));
    }
}
