//! Binary wire codec for every payload that crosses the simulated network.
//!
//! Until this module existed, the communication-cost tables were derived from
//! hand-rolled `wire_size()` *estimates* — nothing was ever serialized, so the
//! paper's central cost claim (E3) was unfalsifiable and compression could not
//! even be attempted. This codec provides a canonical binary encoding for the
//! artifacts the protocols actually propagate, so the network layer can charge
//! the **measured length of real encoded bytes** and receivers can decode
//! their models from those bytes (round-tripping every propagation).
//!
//! # Layout primitives
//!
//! * **Varints** — unsigned LEB128: 7 bits per byte, high bit = continuation.
//!   Tag ids, counts and dimensions are varint-coded.
//! * **Index blocks** — a strictly increasing `u32` index list (sparse-vector
//!   indices, nonzero weight positions, tag universes) is stored in whichever
//!   of three encodings is smallest for the data at hand:
//!   * *delta* — first index as a varint, then `gap − 1` varints (gaps are
//!     ≥ 1, so dense runs cost one byte per entry);
//!   * *bitmap* — first index + span as varints, then `⌈span/8⌉` presence
//!     bits (wins when the list covers most of a narrow range, e.g. trained
//!     weight vectors over the observed vocabulary);
//!   * *contiguous* — just the first index, when the list is exactly
//!     `first..first+len` (fully dense weight vectors).
//! * **Value blocks** — the parallel `f64` payload values, at one of three
//!   precisions ([`WeightPrecision`]): lossless little-endian `f64` (the
//!   default — decoded models are **bit-identical**), `f32`, or `q8` (8-bit
//!   linear quantization against the block's max magnitude, Golder &
//!   Huberman-style power-law weight distributions tolerate this well). The
//!   precision tag is stored in the block, so decoding is self-describing.
//!
//! Framing (magic, version, payload kind) is the transport's concern and
//! lives in `p2pclassify::wire`; this module encodes payload bodies only.
//!
//! # Propagation pruning
//!
//! [`prune_top_k`] keeps only the `k` largest-magnitude weights per tag — the
//! classic model-compression move for power-law-distributed term weights.
//! [`prune_model_guarded`] makes it safe to apply blindly during propagation:
//! the pruned model is accepted only when its mean per-tag training accuracy
//! stays within a configured budget of the full model's.

use crate::data::{MultiLabelDataset, MultiLabelExample, TagId};
use crate::kernel::Kernel;
use crate::multilabel::{OneVsAllModel, TagPrediction};
use crate::svm::{BinaryClassifier, KernelSvm, LinearSvm, SupportVector};
use std::collections::BTreeMap;
use textproc::SparseVector;

/// Why a payload could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The byte stream ended before the payload was complete.
    Truncated,
    /// A structurally invalid encoding (bad block tag, index overflow, …).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("payload truncated"),
            CodecError::Invalid(what) => write!(f, "invalid payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Precision at which model weight values (linear weights, SV dual
/// coefficients) are put on the wire.
///
/// [`WeightPrecision::F64`] round-trips bit-identically; the lossy modes trade
/// bytes for a measured macro-F1 delta (reported by the `wire` benchmark).
/// Document vectors, centroids and score payloads are always shipped at `f64`:
/// only *model* weights are quantization candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightPrecision {
    /// Lossless IEEE-754 double precision (8 bytes per value).
    #[default]
    F64,
    /// Single precision (4 bytes per value).
    F32,
    /// 8-bit linear quantization against the value block's max magnitude
    /// (1 byte per value + a 4-byte scale per block).
    Q8,
}

impl WeightPrecision {
    /// Stable display name for benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            WeightPrecision::F64 => "f64",
            WeightPrecision::F32 => "f32",
            WeightPrecision::Q8 => "q8",
        }
    }
}

/// A cursor over an encoded payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    pub fn read_byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn read_varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.read_byte()?;
            if shift >= 63 && b > 1 {
                return Err(CodecError::Invalid("varint overflows u64"));
            }
            value |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a varint and checks it fits a `usize` count bounded by the
    /// remaining payload (a cheap defense against corrupt length prefixes
    /// requesting absurd allocations).
    fn read_count(&mut self) -> Result<usize, CodecError> {
        let n = self.read_varint()?;
        if n > (self.remaining() as u64 + 1) * 8 {
            return Err(CodecError::Invalid("count exceeds payload size"));
        }
        Ok(n as usize)
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&mut self) -> Result<f64, CodecError> {
        let raw = self.read_bytes(8)?;
        Ok(f64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self) -> Result<f32, CodecError> {
        let raw = self.read_bytes(4)?;
        Ok(f32::from_le_bytes(raw.try_into().expect("4 bytes")))
    }
}

/// Appends an unsigned LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Encoded length of a varint, in bytes.
pub fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Appends a little-endian `f64`.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Index blocks
// ---------------------------------------------------------------------------

const IDX_DELTA: u8 = 0;
const IDX_BITMAP: u8 = 1;
const IDX_CONTIGUOUS: u8 = 2;

/// Encodes a strictly increasing index list (the count travels separately).
fn put_index_block(indices: &[u32], buf: &mut Vec<u8>) {
    let Some((&first, rest)) = indices.split_first() else {
        return; // the zero-count case carries no block at all
    };
    let last = *indices.last().expect("non-empty");
    let span = u64::from(last) - u64::from(first) + 1;
    if span == indices.len() as u64 {
        buf.push(IDX_CONTIGUOUS);
        put_varint(buf, u64::from(first));
        return;
    }
    let mut delta_cost = varint_len(u64::from(first));
    let mut prev = first;
    for &i in rest {
        delta_cost += varint_len(u64::from(i - prev - 1));
        prev = i;
    }
    let bitmap_cost = varint_len(u64::from(first)) + varint_len(span) + (span as usize).div_ceil(8);
    if bitmap_cost < delta_cost {
        buf.push(IDX_BITMAP);
        put_varint(buf, u64::from(first));
        put_varint(buf, span);
        let mut bits = vec![0u8; (span as usize).div_ceil(8)];
        for &i in indices {
            let off = (i - first) as usize;
            bits[off / 8] |= 1 << (off % 8);
        }
        buf.extend_from_slice(&bits);
    } else {
        buf.push(IDX_DELTA);
        put_varint(buf, u64::from(first));
        let mut prev = first;
        for &i in rest {
            put_varint(buf, u64::from(i - prev - 1));
            prev = i;
        }
    }
}

/// Decodes an index block of `count` strictly increasing `u32` indices.
fn read_index_block(r: &mut ByteReader<'_>, count: usize) -> Result<Vec<u32>, CodecError> {
    if count == 0 {
        return Ok(Vec::new());
    }
    let mode = r.read_byte()?;
    let mut out = Vec::with_capacity(count);
    match mode {
        IDX_CONTIGUOUS => {
            let first = r.read_varint()?;
            let last = first
                .checked_add(count as u64 - 1)
                .filter(|&l| l <= u64::from(u32::MAX))
                .ok_or(CodecError::Invalid("contiguous index block overflows u32"))?;
            out.extend(first as u32..=last as u32);
        }
        IDX_DELTA => {
            let first = r.read_varint()?;
            if first > u64::from(u32::MAX) {
                return Err(CodecError::Invalid("index overflows u32"));
            }
            let mut prev = first as u32;
            out.push(prev);
            for _ in 1..count {
                let next = r
                    .read_varint()?
                    .checked_add(1)
                    .and_then(|gap| u64::from(prev).checked_add(gap))
                    .filter(|&n| n <= u64::from(u32::MAX))
                    .ok_or(CodecError::Invalid("index overflows u32"))?;
                prev = next as u32;
                out.push(prev);
            }
        }
        IDX_BITMAP => {
            let first = r.read_varint()?;
            let span = r.read_varint()?;
            if span == 0
                || first
                    .checked_add(span - 1)
                    .filter(|&l| l <= u64::from(u32::MAX))
                    .is_none()
            {
                return Err(CodecError::Invalid("bitmap index block overflows u32"));
            }
            let bits = r.read_bytes((span as usize).div_ceil(8))?;
            for off in 0..span as usize {
                if bits[off / 8] & (1 << (off % 8)) != 0 {
                    out.push(first as u32 + off as u32);
                }
            }
            if out.len() != count {
                return Err(CodecError::Invalid("bitmap population mismatches count"));
            }
        }
        _ => return Err(CodecError::Invalid("unknown index block mode")),
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Value blocks
// ---------------------------------------------------------------------------

const VAL_F64: u8 = 0;
const VAL_F32: u8 = 1;
const VAL_Q8: u8 = 2;

/// Encodes a parallel value block at the requested precision.
fn put_value_block(values: &[f64], precision: WeightPrecision, buf: &mut Vec<u8>) {
    match precision {
        WeightPrecision::F64 => {
            buf.push(VAL_F64);
            for &v in values {
                put_f64(buf, v);
            }
        }
        WeightPrecision::F32 => {
            buf.push(VAL_F32);
            for &v in values {
                buf.extend_from_slice(&(v as f32).to_le_bytes());
            }
        }
        WeightPrecision::Q8 => {
            buf.push(VAL_Q8);
            let max_abs = values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            buf.extend_from_slice(&(max_abs as f32).to_le_bytes());
            let scale = if max_abs > 0.0 { 127.0 / max_abs } else { 0.0 };
            for &v in values {
                let q = (v * scale).round().clamp(-127.0, 127.0) as i8;
                buf.push(q as u8);
            }
        }
    }
}

/// Decodes a value block of `count` values (the precision tag is read from
/// the stream, so decoding works whatever the encoder chose).
fn read_value_block(r: &mut ByteReader<'_>, count: usize) -> Result<Vec<f64>, CodecError> {
    let tag = r.read_byte()?;
    let mut out = Vec::with_capacity(count);
    match tag {
        VAL_F64 => {
            for _ in 0..count {
                out.push(r.read_f64()?);
            }
        }
        VAL_F32 => {
            for _ in 0..count {
                out.push(f64::from(r.read_f32()?));
            }
        }
        VAL_Q8 => {
            let max_abs = f64::from(r.read_f32()?);
            let step = max_abs / 127.0;
            for _ in 0..count {
                let q = r.read_byte()? as i8;
                out.push(f64::from(q) * step);
            }
        }
        _ => return Err(CodecError::Invalid("unknown value block precision")),
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// Encodes a sparse document vector (always lossless: vectors are data, not
/// model weights).
pub fn encode_vector(v: &SparseVector, buf: &mut Vec<u8>) {
    put_varint(buf, v.nnz() as u64);
    put_index_block(v.indices(), buf);
    put_value_block(v.values(), WeightPrecision::F64, buf);
}

/// Decodes a sparse document vector.
pub fn decode_vector(r: &mut ByteReader<'_>) -> Result<SparseVector, CodecError> {
    let nnz = r.read_count()?;
    let indices = read_index_block(r, nnz)?;
    let values = read_value_block(r, nnz)?;
    Ok(SparseVector::from_sorted_pairs(
        indices.into_iter().zip(values),
    ))
}

/// Encodes a list of sparse vectors (PACE centroid payloads).
pub fn encode_vectors(vs: &[SparseVector], buf: &mut Vec<u8>) {
    put_varint(buf, vs.len() as u64);
    for v in vs {
        encode_vector(v, buf);
    }
}

/// Decodes a list of sparse vectors.
pub fn decode_vectors(r: &mut ByteReader<'_>) -> Result<Vec<SparseVector>, CodecError> {
    let n = r.read_count()?;
    (0..n).map(|_| decode_vector(r)).collect()
}

/// Encodes a linear SVM: dimension, bias, then the nonzero weights as an
/// index block + value block at the requested precision.
pub fn encode_linear_svm(m: &LinearSvm, precision: WeightPrecision, buf: &mut Vec<u8>) {
    let w = m.weights();
    put_varint(buf, w.len() as u64);
    put_f64(buf, m.bias());
    let (indices, values): (Vec<u32>, Vec<f64>) = w
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0.0)
        .map(|(i, &v)| (i as u32, v))
        .unzip();
    put_varint(buf, indices.len() as u64);
    put_index_block(&indices, buf);
    put_value_block(&values, precision, buf);
}

/// Largest dense weight dimension [`decode_linear_svm`] will materialize
/// (16 M features ≈ 128 MiB of `f64`s) — an order of magnitude above any
/// realistic lexicon, but small enough that a corrupt dimension prefix in a
/// frame cannot request an absurd allocation.
pub const MAX_WEIGHT_DIM: usize = 1 << 24;

/// Decodes a linear SVM back to its dense weight vector form.
pub fn decode_linear_svm(r: &mut ByteReader<'_>) -> Result<LinearSvm, CodecError> {
    let dim = r.read_varint()?;
    if dim > MAX_WEIGHT_DIM as u64 {
        return Err(CodecError::Invalid("weight dimension exceeds decode cap"));
    }
    let dim = dim as usize;
    let bias = r.read_f64()?;
    let nnz = r.read_count()?;
    let indices = read_index_block(r, nnz)?;
    let values = read_value_block(r, nnz)?;
    let mut w = vec![0.0; dim];
    for (&i, v) in indices.iter().zip(values) {
        let i = i as usize;
        if i >= dim {
            return Err(CodecError::Invalid("weight index out of range"));
        }
        w[i] = v;
    }
    Ok(LinearSvm::from_weights(w, bias))
}

/// Encodes the kernel function tag + parameters.
fn put_kernel(k: Kernel, buf: &mut Vec<u8>) {
    match k {
        Kernel::Linear => buf.push(0),
        Kernel::Rbf { gamma } => {
            buf.push(1);
            put_f64(buf, gamma);
        }
        Kernel::Polynomial {
            gamma,
            coef0,
            degree,
        } => {
            buf.push(2);
            put_f64(buf, gamma);
            put_f64(buf, coef0);
            put_varint(buf, u64::from(degree));
        }
    }
}

fn read_kernel(r: &mut ByteReader<'_>) -> Result<Kernel, CodecError> {
    match r.read_byte()? {
        0 => Ok(Kernel::Linear),
        1 => Ok(Kernel::Rbf {
            gamma: r.read_f64()?,
        }),
        2 => Ok(Kernel::Polynomial {
            gamma: r.read_f64()?,
            coef0: r.read_f64()?,
            degree: u32::try_from(r.read_varint()?)
                .map_err(|_| CodecError::Invalid("polynomial degree overflows u32"))?,
        }),
        _ => Err(CodecError::Invalid("unknown kernel tag")),
    }
}

/// Encodes a kernel SVM: kernel, bias, then the support-vector set (labels as
/// a bitmap, dual coefficients as one value block at the requested precision,
/// vectors losslessly).
pub fn encode_kernel_svm(m: &KernelSvm, precision: WeightPrecision, buf: &mut Vec<u8>) {
    put_kernel(m.kernel(), buf);
    put_f64(buf, m.bias());
    let svs = m.support_vectors();
    put_varint(buf, svs.len() as u64);
    let mut labels = vec![0u8; svs.len().div_ceil(8)];
    for (i, sv) in svs.iter().enumerate() {
        if sv.label {
            labels[i / 8] |= 1 << (i % 8);
        }
    }
    buf.extend_from_slice(&labels);
    let alphas: Vec<f64> = svs.iter().map(|sv| sv.alpha).collect();
    put_value_block(&alphas, precision, buf);
    for sv in svs {
        encode_vector(&sv.vector, buf);
    }
}

/// Decodes a kernel SVM.
pub fn decode_kernel_svm(r: &mut ByteReader<'_>) -> Result<KernelSvm, CodecError> {
    let kernel = read_kernel(r)?;
    let bias = r.read_f64()?;
    let n = r.read_count()?;
    let labels = r.read_bytes(n.div_ceil(8))?.to_vec();
    let alphas = read_value_block(r, n)?;
    let mut svs = Vec::with_capacity(n);
    for (i, alpha) in alphas.into_iter().enumerate() {
        let vector = decode_vector(r)?;
        let label = labels[i / 8] & (1 << (i % 8)) != 0;
        svs.push(SupportVector {
            vector,
            label,
            alpha,
        });
    }
    Ok(KernelSvm::from_support_vectors(svs, bias, kernel))
}

/// Encodes a one-vs-all model shell (threshold, min-tags policy, tag
/// universe) followed by one classifier body per tag via `enc`.
fn encode_ova<C, F>(model: &OneVsAllModel<C>, buf: &mut Vec<u8>, mut enc: F)
where
    C: BinaryClassifier,
    F: FnMut(&C, &mut Vec<u8>),
{
    put_f64(buf, model.threshold());
    put_varint(buf, model.min_tags() as u64);
    let tags: Vec<TagId> = model.tags().collect();
    put_varint(buf, tags.len() as u64);
    put_index_block(&tags, buf);
    for (_, clf) in model.iter() {
        enc(clf, buf);
    }
}

/// Decodes a one-vs-all model shell, reading one classifier per tag via `dec`.
fn decode_ova<C, F>(r: &mut ByteReader<'_>, mut dec: F) -> Result<OneVsAllModel<C>, CodecError>
where
    C: BinaryClassifier,
    F: FnMut(&mut ByteReader<'_>) -> Result<C, CodecError>,
{
    let threshold = r.read_f64()?;
    let min_tags = r.read_varint()? as usize;
    let num_tags = r.read_count()?;
    let tags = read_index_block(r, num_tags)?;
    let mut classifiers = BTreeMap::new();
    for tag in tags {
        classifiers.insert(tag, dec(r)?);
    }
    Ok(OneVsAllModel::from_classifiers(
        classifiers,
        threshold,
        min_tags,
    ))
}

/// Encodes a one-vs-all linear model (the PACE propagation payload body).
pub fn encode_linear_ova(
    model: &OneVsAllModel<LinearSvm>,
    precision: WeightPrecision,
    buf: &mut Vec<u8>,
) {
    encode_ova(model, buf, |clf, buf| {
        encode_linear_svm(clf, precision, buf);
    });
}

/// Decodes a one-vs-all linear model.
pub fn decode_linear_ova(r: &mut ByteReader<'_>) -> Result<OneVsAllModel<LinearSvm>, CodecError> {
    decode_ova(r, decode_linear_svm)
}

/// Encodes a one-vs-all kernel model (the CEMPaR propagation payload body).
pub fn encode_kernel_ova(
    model: &OneVsAllModel<KernelSvm>,
    precision: WeightPrecision,
    buf: &mut Vec<u8>,
) {
    encode_ova(model, buf, |clf, buf| {
        encode_kernel_svm(clf, precision, buf);
    });
}

/// Decodes a one-vs-all kernel model.
pub fn decode_kernel_ova(r: &mut ByteReader<'_>) -> Result<OneVsAllModel<KernelSvm>, CodecError> {
    decode_ova(r, decode_kernel_svm)
}

/// Encodes one tagged example (vector + tag-id index block).
pub fn encode_example(ex: &MultiLabelExample, buf: &mut Vec<u8>) {
    encode_vector(&ex.vector, buf);
    let tags: Vec<TagId> = ex.tags.iter().copied().collect();
    put_varint(buf, tags.len() as u64);
    put_index_block(&tags, buf);
}

/// Decodes one tagged example.
pub fn decode_example(r: &mut ByteReader<'_>) -> Result<MultiLabelExample, CodecError> {
    let vector = decode_vector(r)?;
    let num_tags = r.read_count()?;
    let tags = read_index_block(r, num_tags)?;
    Ok(MultiLabelExample::new(vector, tags))
}

/// Encodes a whole dataset (the Centralized baseline's training upload).
pub fn encode_dataset(ds: &MultiLabelDataset, buf: &mut Vec<u8>) {
    put_varint(buf, ds.len() as u64);
    for (vector, tags) in ds.iter() {
        encode_vector(vector, buf);
        let tags: Vec<TagId> = tags.iter().copied().collect();
        put_varint(buf, tags.len() as u64);
        put_index_block(&tags, buf);
    }
}

/// Decodes a dataset.
pub fn decode_dataset(r: &mut ByteReader<'_>) -> Result<MultiLabelDataset, CodecError> {
    let n = r.read_count()?;
    let mut out = MultiLabelDataset::new();
    for _ in 0..n {
        out.push(decode_example(r)?);
    }
    Ok(out)
}

/// Encodes a scored tag list (prediction responses) in its caller-defined
/// order (per-tag vote sums accumulate in list order, so order is part of
/// the payload). The wire format canonicalizes `confidence` as
/// `logistic(score)` — which is exactly how every response producer (the
/// CEMPaR regional scorers, the Centralized server) derives it — so only
/// `(tag, score)` travels and the decoder recomputes the identical
/// confidence bits.
pub fn encode_predictions(preds: &[TagPrediction], buf: &mut Vec<u8>) {
    put_varint(buf, preds.len() as u64);
    for p in preds {
        put_varint(buf, u64::from(p.tag));
        put_f64(buf, p.score);
    }
}

/// Decodes a scored tag list, re-deriving each confidence as
/// `logistic(score)` (see [`encode_predictions`]).
pub fn decode_predictions(r: &mut ByteReader<'_>) -> Result<Vec<TagPrediction>, CodecError> {
    let n = r.read_count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = u32::try_from(r.read_varint()?)
            .map_err(|_| CodecError::Invalid("tag id overflows u32"))?;
        let score = r.read_f64()?;
        out.push(TagPrediction {
            tag,
            score,
            confidence: 1.0 / (1.0 + (-score).exp()),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Propagation pruning
// ---------------------------------------------------------------------------

/// Keeps only the `k` largest-magnitude weights of every per-tag classifier
/// (ties broken toward lower feature ids, deterministically). Dimensions and
/// biases are preserved, so the pruned model scores through the same code
/// paths as the original.
pub fn prune_top_k(model: &OneVsAllModel<LinearSvm>, k: usize) -> OneVsAllModel<LinearSvm> {
    let classifiers: BTreeMap<TagId, LinearSvm> = model
        .iter()
        .map(|(tag, clf)| {
            let w = clf.weights();
            let mut nonzero: Vec<usize> = (0..w.len()).filter(|&i| w[i] != 0.0).collect();
            if nonzero.len() > k {
                nonzero.sort_by(|&a, &b| w[b].abs().total_cmp(&w[a].abs()).then(a.cmp(&b)));
                nonzero.truncate(k);
            }
            let mut pruned = vec![0.0; w.len()];
            for &i in &nonzero {
                pruned[i] = w[i];
            }
            (tag, LinearSvm::from_weights(pruned, clf.bias()))
        })
        .collect();
    OneVsAllModel::from_classifiers(classifiers, model.threshold(), model.min_tags())
}

/// Mean per-tag binary training accuracy of a one-vs-all model on a dataset —
/// the same quantity PACE uses as its ensemble vote weight. Returns 1.0 on an
/// empty dataset or tag-less model.
pub fn ensemble_accuracy(model: &OneVsAllModel<LinearSvm>, data: &MultiLabelDataset) -> f64 {
    if data.is_empty() || model.num_tags() == 0 {
        return 1.0;
    }
    let mut acc_sum = 0.0;
    for (tag, clf) in model.iter() {
        let correct = data
            .iter()
            .filter(|(x, tags)| (clf.decision(x) >= 0.0) == tags.contains(&tag))
            .count();
        acc_sum += correct as f64 / data.len() as f64;
    }
    acc_sum / model.num_tags() as f64
}

/// Accuracy-guarded propagation pruning: returns [`prune_top_k`]`(model, k)`
/// when the pruned model's [`ensemble_accuracy`] on `data` (the propagating
/// peer's own training set) stays within `max_accuracy_drop` of the full
/// model's; otherwise the full model is kept (pruning must never silently
/// cripple a peer's contribution).
pub fn prune_model_guarded(
    model: &OneVsAllModel<LinearSvm>,
    k: usize,
    data: &MultiLabelDataset,
    max_accuracy_drop: f64,
) -> OneVsAllModel<LinearSvm> {
    let pruned = prune_top_k(model, k);
    if data.is_empty() {
        return pruned;
    }
    let full_acc = ensemble_accuracy(model, data);
    let pruned_acc = ensemble_accuracy(&pruned, data);
    if full_acc - pruned_acc <= max_accuracy_drop {
        pruned
    } else {
        model.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::MultiLabelExample;
    use crate::multilabel::OneVsAllTrainer;
    use crate::svm::{KernelSvmTrainer, LinearSvmTrainer};
    use proptest::prelude::*;

    fn roundtrip<T, E, D>(value: &T, enc: E, dec: D) -> T
    where
        E: Fn(&T, &mut Vec<u8>),
        D: Fn(&mut ByteReader<'_>) -> Result<T, CodecError>,
    {
        let mut buf = Vec::new();
        enc(value, &mut buf);
        let mut r = ByteReader::new(&buf);
        let out = dec(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0, "payload fully consumed");
        out
    }

    #[test]
    fn varint_roundtrips_and_lengths() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "{v}");
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.read_varint().unwrap(), v);
        }
    }

    #[test]
    fn index_block_picks_compact_modes() {
        // Contiguous run: mode byte + one varint.
        let contiguous: Vec<u32> = (5..205).collect();
        let mut buf = Vec::new();
        put_index_block(&contiguous, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(
            read_index_block(&mut ByteReader::new(&buf), contiguous.len()).unwrap(),
            contiguous
        );
        // Dense-but-gappy list: the bitmap beats per-entry varints.
        let gappy: Vec<u32> = (0..600).filter(|i| i % 3 != 2).collect();
        let mut buf = Vec::new();
        put_index_block(&gappy, &mut buf);
        assert!(buf.len() < 1 + gappy.len());
        assert_eq!(
            read_index_block(&mut ByteReader::new(&buf), gappy.len()).unwrap(),
            gappy
        );
        // Sparse list over a huge range: deltas win over the bitmap.
        let sparse: Vec<u32> = (0..20).map(|i| i * 50_000).collect();
        let mut buf = Vec::new();
        put_index_block(&sparse, &mut buf);
        assert!(buf.len() < 1 + 20 * 5);
        assert_eq!(
            read_index_block(&mut ByteReader::new(&buf), sparse.len()).unwrap(),
            sparse
        );
    }

    #[test]
    fn value_block_precisions() {
        let values = [1.5, -0.25, 0.75, -2.0];
        for precision in [
            WeightPrecision::F64,
            WeightPrecision::F32,
            WeightPrecision::Q8,
        ] {
            let mut buf = Vec::new();
            put_value_block(&values, precision, &mut buf);
            let decoded = read_value_block(&mut ByteReader::new(&buf), values.len()).unwrap();
            for (orig, dec) in values.iter().zip(&decoded) {
                let tol = match precision {
                    WeightPrecision::F64 => 0.0,
                    WeightPrecision::F32 => 1e-6,
                    WeightPrecision::Q8 => 2.0 / 127.0 * 2.0,
                };
                assert!((orig - dec).abs() <= tol, "{precision:?}: {orig} vs {dec}");
            }
        }
    }

    #[test]
    fn truncated_and_corrupt_payloads_error() {
        let v = SparseVector::from_pairs([(3, 1.0), (900, -0.5)]);
        let mut buf = Vec::new();
        encode_vector(&v, &mut buf);
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(decode_vector(&mut r).is_err(), "cut at {cut}");
        }
        // Corrupt the index-block mode byte (first byte after the nnz varint).
        let mut corrupt = buf.clone();
        corrupt[1] = 9;
        assert!(decode_vector(&mut ByteReader::new(&corrupt)).is_err());
    }

    #[test]
    fn linear_model_roundtrips_bit_identically() {
        let (xs, ys) = crate::svm::test_util::separable(80, 3);
        let model = LinearSvmTrainer::default().train(&xs, &ys);
        let decoded = roundtrip(
            &model,
            |m, buf| encode_linear_svm(m, WeightPrecision::F64, buf),
            decode_linear_svm,
        );
        assert_eq!(model, decoded);
        for x in &xs {
            assert_eq!(model.decision(x).to_bits(), decoded.decision(x).to_bits());
        }
    }

    #[test]
    fn kernel_model_roundtrips_bit_identically() {
        let (xs, ys) = crate::svm::test_util::xor(60, 4);
        let model = KernelSvmTrainer::default().train(&xs, &ys);
        let decoded = roundtrip(
            &model,
            |m, buf| encode_kernel_svm(m, WeightPrecision::F64, buf),
            decode_kernel_svm,
        );
        assert_eq!(model, decoded);
        for x in &xs {
            assert_eq!(model.decision(x).to_bits(), decoded.decision(x).to_bits());
        }
    }

    fn toy_dataset() -> MultiLabelDataset {
        let mut ds = MultiLabelDataset::new();
        for i in 0..25 {
            let s = 1.0 + (i % 4) as f64 * 0.1;
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(0, s)]),
                [1],
            ));
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(1, s)]),
                [2],
            ));
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(0, s), (1, s), (7, 0.3)]),
                [1, 2],
            ));
        }
        ds
    }

    #[test]
    fn linear_ova_roundtrip_preserves_scores() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_linear(&ds, &LinearSvmTrainer::default());
        let mut buf = Vec::new();
        encode_linear_ova(&model, WeightPrecision::F64, &mut buf);
        let decoded = decode_linear_ova(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(decoded.num_tags(), model.num_tags());
        assert_eq!(decoded.threshold(), model.threshold());
        assert_eq!(decoded.min_tags(), model.min_tags());
        for (x, _) in ds.iter() {
            assert_eq!(model.scores(x), decoded.scores(x));
            assert_eq!(model.predict(x), decoded.predict(x));
        }
    }

    #[test]
    fn kernel_ova_roundtrip_preserves_scores() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_kernel(&ds, &KernelSvmTrainer::default());
        let mut buf = Vec::new();
        encode_kernel_ova(&model, WeightPrecision::F64, &mut buf);
        let decoded = decode_kernel_ova(&mut ByteReader::new(&buf)).unwrap();
        for (x, _) in ds.iter() {
            assert_eq!(model.scores(x), decoded.scores(x));
        }
    }

    #[test]
    fn quantized_linear_model_stays_close() {
        let (xs, ys) = crate::svm::test_util::separable(120, 5);
        let model = LinearSvmTrainer::default().train(&xs, &ys);
        for precision in [WeightPrecision::F32, WeightPrecision::Q8] {
            let mut buf = Vec::new();
            encode_linear_svm(&model, precision, &mut buf);
            let decoded = decode_linear_svm(&mut ByteReader::new(&buf)).unwrap();
            let agree = xs
                .iter()
                .filter(|x| model.predict(x) == decoded.predict(x))
                .count();
            assert!(
                agree as f64 / xs.len() as f64 > 0.95,
                "{precision:?}: {agree}/{}",
                xs.len()
            );
        }
    }

    #[test]
    fn pruning_keeps_top_weights_and_guard_rejects_harmful_cuts() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_linear(&ds, &LinearSvmTrainer::default());
        let pruned = prune_top_k(&model, 1);
        for (tag, clf) in pruned.iter() {
            assert!(clf.nonzero_weights() <= 1, "tag {tag}");
            assert_eq!(clf.bias(), model.classifier(tag).unwrap().bias());
        }
        // A generous budget keeps useful models; a zero-weight prune that
        // destroys accuracy is rejected by the guard.
        let harsh = prune_model_guarded(&model, 0, &ds, 0.01);
        let full_acc = ensemble_accuracy(&model, &ds);
        let harsh_acc = ensemble_accuracy(&harsh, &ds);
        assert!(full_acc - harsh_acc <= 0.01 + 1e-12);
    }

    fn arb_vector() -> impl Strategy<Value = SparseVector> {
        prop::collection::vec((0u32..5_000, -3.0f64..3.0), 0..40).prop_map(SparseVector::from_pairs)
    }

    fn arb_example() -> impl Strategy<Value = MultiLabelExample> {
        (arb_vector(), prop::collection::btree_set(0u32..200, 0..6))
            .prop_map(|(v, tags)| MultiLabelExample::new(v, tags))
    }

    fn arb_linear_svm() -> impl Strategy<Value = LinearSvm> {
        (prop::collection::vec(-4.0f64..4.0, 0..60), -2.0f64..2.0)
            .prop_map(|(weights, bias)| LinearSvm::from_weights(weights, bias))
    }

    fn arb_kernel_svm() -> impl Strategy<Value = KernelSvm> {
        (
            prop::collection::vec((arb_vector(), any::<bool>(), 0.01f64..3.0), 0..12),
            -2.0f64..2.0,
            0.1f64..2.0,
            0u8..2,
        )
            .prop_map(|(svs, bias, gamma, which)| {
                let kernel = if which == 0 {
                    Kernel::Linear
                } else {
                    Kernel::Rbf { gamma }
                };
                let svs = svs
                    .into_iter()
                    .map(|(vector, label, alpha)| SupportVector {
                        vector,
                        label,
                        alpha,
                    })
                    .collect();
                KernelSvm::from_support_vectors(svs, bias, kernel)
            })
    }

    fn arb_linear_classifiers() -> impl Strategy<Value = BTreeMap<TagId, LinearSvm>> {
        prop::collection::vec((0u32..300, arb_linear_svm()), 0..6)
            .prop_map(|pairs| pairs.into_iter().collect())
    }

    fn arb_predictions() -> impl Strategy<Value = Vec<TagPrediction>> {
        // Confidence is canonically logistic(score) on the wire — generate
        // predictions the way every response producer builds them.
        prop::collection::vec((0u32..10_000, -5.0f64..5.0), 0..30).prop_map(|entries| {
            entries
                .into_iter()
                .map(|(tag, score)| TagPrediction {
                    tag,
                    score,
                    confidence: 1.0 / (1.0 + (-score).exp()),
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_vector_roundtrip(v in arb_vector()) {
            let decoded = roundtrip(&v, encode_vector, decode_vector);
            prop_assert_eq!(&decoded, &v);
        }

        #[test]
        fn prop_vectors_roundtrip(vs in prop::collection::vec(arb_vector(), 0..8)) {
            let decoded = roundtrip(&vs, |vs, b| encode_vectors(vs, b), decode_vectors);
            prop_assert_eq!(&decoded, &vs);
        }

        #[test]
        fn prop_linear_svm_roundtrip_scores_bit_identical(m in arb_linear_svm(), probes in prop::collection::vec(arb_vector(), 1..6)) {
            let decoded = roundtrip(&m, |m, b| encode_linear_svm(m, WeightPrecision::F64, b), decode_linear_svm);
            prop_assert_eq!(&decoded, &m);
            for p in &probes {
                prop_assert_eq!(m.decision(p).to_bits(), decoded.decision(p).to_bits());
            }
        }

        #[test]
        fn prop_kernel_svm_roundtrip_scores_bit_identical(m in arb_kernel_svm(), probes in prop::collection::vec(arb_vector(), 1..4)) {
            let decoded = roundtrip(&m, |m, b| encode_kernel_svm(m, WeightPrecision::F64, b), decode_kernel_svm);
            prop_assert_eq!(&decoded, &m);
            for p in &probes {
                prop_assert_eq!(m.decision(p).to_bits(), decoded.decision(p).to_bits());
            }
        }

        #[test]
        fn prop_linear_ova_roundtrip(models in arb_linear_classifiers(), threshold in -1.0f64..1.0, min_tags in 0usize..4) {
            let model = OneVsAllModel::from_classifiers(models, threshold, min_tags);
            let mut buf = Vec::new();
            encode_linear_ova(&model, WeightPrecision::F64, &mut buf);
            let mut r = ByteReader::new(&buf);
            let decoded = decode_linear_ova(&mut r).unwrap();
            prop_assert_eq!(r.remaining(), 0);
            prop_assert_eq!(decoded.num_tags(), model.num_tags());
            for ((ta, ca), (tb, cb)) in model.iter().zip(decoded.iter()) {
                prop_assert_eq!(ta, tb);
                prop_assert_eq!(ca, cb);
            }
        }

        #[test]
        fn prop_example_roundtrip(ex in arb_example()) {
            let decoded = roundtrip(&ex, encode_example, decode_example);
            prop_assert_eq!(&decoded, &ex);
        }

        #[test]
        fn prop_dataset_roundtrip(examples in prop::collection::vec(arb_example(), 0..12)) {
            let ds = MultiLabelDataset::from_examples(examples);
            let decoded = roundtrip(&ds, encode_dataset, decode_dataset);
            prop_assert_eq!(&decoded, &ds);
        }

        #[test]
        fn prop_predictions_roundtrip(preds in arb_predictions()) {
            let mut buf = Vec::new();
            encode_predictions(&preds, &mut buf);
            let mut r = ByteReader::new(&buf);
            let decoded = decode_predictions(&mut r).unwrap();
            prop_assert_eq!(r.remaining(), 0);
            prop_assert_eq!(&decoded, &preds);
        }
    }
}
