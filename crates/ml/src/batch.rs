//! Batched one-vs-all scoring: the hot path of the tagging system.
//!
//! The scalar path scores a document with one dot product per (tag,
//! classifier): `T` walks over `T` different dense weight vectors, plus a
//! `Vec` allocation and a sort per call. At realistic tag-vocabulary sizes
//! (Golder & Huberman: thousands of tags) that per-tag loop dominates the
//! whole pipeline. This module packs all per-tag models into shared read-only
//! structures so scoring a document against the *entire* tag universe is a
//! single pass over the document's nonzeros:
//!
//! * [`TagWeightMatrix`] — a CSR-style sparse matrix over the per-tag
//!   [`LinearSvm`] weight vectors, indexed by *feature*: row `j` holds the
//!   `(tag, weight)` pairs of every tag whose model has a nonzero weight on
//!   feature `j`. Scoring scatters each document nonzero into per-tag
//!   accumulators (one contiguous `f64` slab), instead of gathering scattered
//!   dense-vector entries per tag.
//! * [`BatchKernelScorer`] — the analogous entry point for [`KernelSvm`]
//!   ensembles: the kernel row `K(sv, x)` is computed **once per distinct
//!   support vector** and shared by every tag that retains that vector,
//!   hoisting the (expensive) kernel evaluations out of the per-tag loop.
//!
//! # Equivalence contract
//!
//! Both batched scorers produce decision values, confidences and orderings
//! **identical** to the scalar [`crate::svm::BinaryClassifier`] path: per-tag terms are
//! accumulated in the same (ascending document-feature / original
//! support-vector) order, so every floating-point operation happens in the
//! same sequence as the scalar code. The only tolerated deviation is the sign
//! of an exact zero (the batched path skips explicitly-zero weights whose
//! `0.0 · v` contributions cannot change a sum). Property tests in this
//! module and protocol-level tests in `p2pclassify` pin the equivalence.

use crate::data::TagId;
use crate::kernel::Kernel;
use crate::multilabel::TagPrediction;
use crate::svm::{KernelSvm, LinearSvm};
use std::collections::{BTreeSet, HashMap};
use textproc::SparseVector;

/// Logistic squashing, identical to the scalar scoring path's.
#[inline]
fn logistic(score: f64) -> f64 {
    1.0 / (1.0 + (-score).exp())
}

/// Sorts predictions by descending score — stable, with the exact comparator
/// the scalar [`crate::multilabel::OneVsAllModel::scores`] uses, so tie-breaks
/// agree bit for bit (both paths start from ascending-tag order).
fn sort_by_descending_score(out: &mut [TagPrediction]) {
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

/// All per-tag linear models packed into one shared CSR matrix, plus the
/// threshold/min-tags prediction policy of the one-vs-all model it was built
/// from.
///
/// Layout: `row_ptr[j]..row_ptr[j + 1]` delimits the entries of feature `j`
/// in the parallel `entry_slot` / `entry_weight` arrays; `entry_slot[e]` is
/// an index into `tags` (ascending tag order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TagWeightMatrix {
    tags: Vec<TagId>,
    biases: Vec<f64>,
    row_ptr: Vec<u32>,
    entry_slot: Vec<u32>,
    entry_weight: Vec<f64>,
    threshold: f64,
    min_tags: usize,
}

impl TagWeightMatrix {
    /// Packs per-tag linear models into a CSR matrix.
    ///
    /// `threshold` and `min_tags` replicate the prediction policy of the
    /// one-vs-all model (see [`Self::predict`]).
    pub fn from_classifiers<'a, I>(classifiers: I, threshold: f64, min_tags: usize) -> Self
    where
        I: IntoIterator<Item = (TagId, &'a LinearSvm)>,
    {
        let models: Vec<(TagId, &LinearSvm)> = classifiers.into_iter().collect();
        debug_assert!(
            models.windows(2).all(|w| w[0].0 < w[1].0),
            "classifiers must arrive in ascending tag order"
        );
        let num_features = models
            .iter()
            .map(|(_, m)| m.weights().len())
            .max()
            .unwrap_or(0);
        // Count nonzero weights per feature row, then prefix-sum into row_ptr.
        let mut row_len = vec![0u32; num_features];
        for (_, model) in &models {
            for (j, &w) in model.weights().iter().enumerate() {
                if w != 0.0 {
                    row_len[j] += 1;
                }
            }
        }
        let mut row_ptr = Vec::with_capacity(num_features + 1);
        let mut acc = 0u32;
        row_ptr.push(0);
        for &len in &row_len {
            acc += len;
            row_ptr.push(acc);
        }
        let nnz = acc as usize;
        let mut entry_slot = vec![0u32; nnz];
        let mut entry_weight = vec![0.0f64; nnz];
        let mut cursor: Vec<u32> = row_ptr[..num_features].to_vec();
        let mut tags = Vec::with_capacity(models.len());
        let mut biases = Vec::with_capacity(models.len());
        for (slot, (tag, model)) in models.iter().enumerate() {
            tags.push(*tag);
            biases.push(model.bias());
            for (j, &w) in model.weights().iter().enumerate() {
                if w != 0.0 {
                    let e = cursor[j] as usize;
                    entry_slot[e] = slot as u32;
                    entry_weight[e] = w;
                    cursor[j] += 1;
                }
            }
        }
        Self {
            tags,
            biases,
            row_ptr,
            entry_slot,
            entry_weight,
            threshold,
            min_tags,
        }
    }

    /// Number of tags (matrix columns).
    pub fn num_tags(&self) -> usize {
        self.tags.len()
    }

    /// The tags, in ascending order (the slot order of all per-slot output).
    pub fn tags(&self) -> &[TagId] {
        &self.tags
    }

    /// Number of stored nonzero weights.
    pub fn nnz(&self) -> usize {
        self.entry_weight.len()
    }

    /// Raw decision values for every tag, written into `out` in slot
    /// (ascending tag) order. One pass over the document's nonzeros.
    ///
    /// Identical to calling `classifier.decision(x)` per tag: terms are
    /// accumulated in ascending feature order and the bias is added last,
    /// mirroring `dot_dense(x) + bias`.
    pub fn decisions_into(&self, x: &SparseVector, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.tags.len(), 0.0);
        let num_features = self.row_ptr.len().saturating_sub(1);
        for (j, v) in x.iter() {
            let j = j as usize;
            if j >= num_features {
                // Features beyond every model's weight vector contribute
                // nothing (the scalar path's `dense.get(i)` misses).
                continue;
            }
            let lo = self.row_ptr[j] as usize;
            let hi = self.row_ptr[j + 1] as usize;
            for e in lo..hi {
                out[self.entry_slot[e] as usize] += self.entry_weight[e] * v;
            }
        }
        for (slot, bias) in self.biases.iter().enumerate() {
            out[slot] += bias;
        }
    }

    /// Unpacks the matrix back into per-tag dense classifiers.
    ///
    /// Every reconstructed weight vector has length `num_features` (the
    /// packed dimension); stored nonzeros land at their original indices and
    /// everything else is `0.0`, so decisions — and warm-started retraining,
    /// which only reads the weights — are identical to the pre-pack model.
    /// This lets a model registry keep nothing but the CSR matrix at rest
    /// and materialize the dense form only for the one peer being refit.
    pub fn to_one_vs_all(&self) -> crate::multilabel::OneVsAllModel<LinearSvm> {
        let num_features = self.row_ptr.len().saturating_sub(1);
        let mut weights = vec![vec![0.0f64; num_features]; self.tags.len()];
        for (j, row) in self.row_ptr.windows(2).enumerate() {
            for e in row[0] as usize..row[1] as usize {
                weights[self.entry_slot[e] as usize][j] = self.entry_weight[e];
            }
        }
        let classifiers: std::collections::BTreeMap<TagId, LinearSvm> = self
            .tags
            .iter()
            .zip(weights.into_iter().zip(self.biases.iter()))
            .map(|(&tag, (w, &bias))| (tag, LinearSvm::from_weights(w, bias)))
            .collect();
        crate::multilabel::OneVsAllModel::from_classifiers(
            classifiers,
            self.threshold,
            self.min_tags,
        )
    }

    /// Raw decision values for every tag (allocating convenience wrapper).
    pub fn decisions(&self, x: &SparseVector) -> Vec<f64> {
        let mut out = Vec::new();
        self.decisions_into(x, &mut out);
        out
    }

    /// Scores every tag for the document, sorted by descending score —
    /// the batched equivalent of [`crate::multilabel::OneVsAllModel::scores`].
    pub fn scores(&self, x: &SparseVector) -> Vec<TagPrediction> {
        let mut scratch = Vec::new();
        self.scores_with_scratch(x, &mut scratch)
    }

    /// [`Self::scores`] with a caller-provided scratch buffer, so tight loops
    /// over many documents avoid re-allocating the accumulator slab.
    pub fn scores_with_scratch(
        &self,
        x: &SparseVector,
        scratch: &mut Vec<f64>,
    ) -> Vec<TagPrediction> {
        self.decisions_into(x, scratch);
        let mut out: Vec<TagPrediction> = self
            .tags
            .iter()
            .zip(scratch.iter())
            .map(|(&tag, &score)| TagPrediction {
                tag,
                score,
                confidence: logistic(score),
            })
            .collect();
        sort_by_descending_score(&mut out);
        out
    }

    /// Confidence votes in slot (ascending tag) order, **unsorted**: each
    /// prediction carries `score == confidence == logistic(decision)`. This
    /// is the form PACE's ensemble vote consumes; skipping the per-model sort
    /// is safe because vote combination is per-tag and order-independent.
    pub fn confidence_votes_into(
        &self,
        x: &SparseVector,
        scratch: &mut Vec<f64>,
        out: &mut Vec<TagPrediction>,
    ) {
        self.decisions_into(x, scratch);
        out.clear();
        out.extend(self.tags.iter().zip(scratch.iter()).map(|(&tag, &score)| {
            let confidence = logistic(score);
            TagPrediction {
                tag,
                score: confidence,
                confidence,
            }
        }));
    }

    /// Predicts the tag set — the batched equivalent of
    /// [`crate::multilabel::OneVsAllModel::predict`]: tags whose decision
    /// value reaches the threshold, or the top `min_tags` tags if none does.
    pub fn predict(&self, x: &SparseVector) -> BTreeSet<TagId> {
        let scores = self.scores(x);
        let above: BTreeSet<TagId> = scores
            .iter()
            .filter(|p| p.score >= self.threshold)
            .map(|p| p.tag)
            .collect();
        if !above.is_empty() {
            return above;
        }
        crate::multilabel::top_scored_tags(&scores, self.min_tags)
    }

    /// Scores a whole slice of documents, in input order. Documents are
    /// scored independently (and in parallel when cores are available); the
    /// ordered reduction keeps the output deterministic.
    pub fn scores_batch(&self, xs: &[SparseVector]) -> Vec<Vec<TagPrediction>> {
        let chunk = xs
            .len()
            .div_ceil(parallel::effective_threads(xs.len()).max(1))
            .max(1);
        let per_chunk = parallel::par_chunks(xs, chunk, |_, docs| {
            let mut scratch = Vec::new();
            docs.iter()
                .map(|x| self.scores_with_scratch(x, &mut scratch))
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Hashable identity of a (kernel, support-vector) pair, used to deduplicate
/// kernel evaluations across tags. Values are compared by bit pattern, which
/// is exactly the granularity at which `Kernel::eval` results coincide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct KernelRowKey {
    kernel: (u8, u64, u64, u32),
    indices: Vec<u32>,
    value_bits: Vec<u64>,
}

impl KernelRowKey {
    fn new(kernel: Kernel, v: &SparseVector) -> Self {
        let kernel = match kernel {
            Kernel::Linear => (0, 0, 0, 0),
            Kernel::Rbf { gamma } => (1, gamma.to_bits(), 0, 0),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (2, gamma.to_bits(), coef0.to_bits(), degree),
        };
        Self {
            kernel,
            indices: v.indices().to_vec(),
            value_bits: v.values().iter().map(|x| x.to_bits()).collect(),
        }
    }
}

/// Batched scoring over per-tag [`KernelSvm`] models.
///
/// The scalar path evaluates `K(sv, x)` once per (tag, support vector); in a
/// cascade the same document vectors survive as support vectors of many tags,
/// so the kernel row is recomputed per tag. This scorer stores each distinct
/// `(kernel, support vector)` once, evaluates the kernel row once per query,
/// and lets every tag read its terms from the shared row.
#[derive(Debug, Clone, Default)]
pub struct BatchKernelScorer {
    tags: Vec<TagId>,
    biases: Vec<f64>,
    /// Per tag slot: `(unique_row_index, alpha · y)` in original SV order.
    terms: Vec<Vec<(u32, f64)>>,
    /// Distinct (kernel, support vector) pairs.
    unique: Vec<(Kernel, SparseVector)>,
}

impl BatchKernelScorer {
    /// Builds a batched scorer over per-tag kernel models.
    pub fn from_classifiers<'a, I>(classifiers: I) -> Self
    where
        I: IntoIterator<Item = (TagId, &'a KernelSvm)>,
    {
        let mut tags = Vec::new();
        let mut biases = Vec::new();
        let mut terms: Vec<Vec<(u32, f64)>> = Vec::new();
        let mut unique: Vec<(Kernel, SparseVector)> = Vec::new();
        let mut seen: HashMap<KernelRowKey, u32> = HashMap::new();
        for (tag, model) in classifiers {
            if let Some(&last) = tags.last() {
                debug_assert!(last < tag, "classifiers must arrive in ascending tag order");
            }
            tags.push(tag);
            biases.push(model.bias());
            let kernel = model.kernel();
            let mut tag_terms = Vec::with_capacity(model.num_support_vectors());
            for sv in model.support_vectors() {
                let key = KernelRowKey::new(kernel, &sv.vector);
                let idx = *seen.entry(key).or_insert_with(|| {
                    unique.push((kernel, sv.vector.clone()));
                    (unique.len() - 1) as u32
                });
                let y = if sv.label { 1.0 } else { -1.0 };
                tag_terms.push((idx, sv.alpha * y));
            }
            terms.push(tag_terms);
        }
        Self {
            tags,
            biases,
            terms,
            unique,
        }
    }

    /// Number of tags.
    pub fn num_tags(&self) -> usize {
        self.tags.len()
    }

    /// The tags, in ascending order.
    pub fn tags(&self) -> &[TagId] {
        &self.tags
    }

    /// Number of distinct support vectors shared across all tags (versus
    /// [`Self::total_terms`] scalar kernel evaluations without sharing).
    pub fn num_unique_vectors(&self) -> usize {
        self.unique.len()
    }

    /// Total number of (tag, support-vector) terms — the number of kernel
    /// evaluations the scalar path performs per query.
    pub fn total_terms(&self) -> usize {
        self.terms.iter().map(Vec::len).sum()
    }

    /// Evaluates the shared kernel row once, then reduces per tag. Returns
    /// `(tag, decision)` in ascending tag order.
    ///
    /// Per-tag sums start from the bias and add `alpha·y·K` terms in original
    /// support-vector order, exactly as the scalar
    /// [`crate::svm::BinaryClassifier::decision`] of [`KernelSvm`] does, so the
    /// decisions are identical to the scalar path's.
    pub fn decisions(&self, x: &SparseVector) -> Vec<(TagId, f64)> {
        let row: Vec<f64> = self
            .unique
            .iter()
            .map(|(kernel, sv)| kernel.eval(sv, x))
            .collect();
        self.tags
            .iter()
            .zip(self.terms.iter().zip(&self.biases))
            .map(|(&tag, (terms, &bias))| {
                let mut sum = bias;
                for &(idx, coef) in terms {
                    sum += coef * row[idx as usize];
                }
                (tag, sum)
            })
            .collect()
    }

    /// Scores every tag, sorted by descending score — the batched equivalent
    /// of [`crate::multilabel::OneVsAllModel::scores`] over kernel models.
    pub fn scores(&self, x: &SparseVector) -> Vec<TagPrediction> {
        let mut out: Vec<TagPrediction> = self
            .decisions(x)
            .into_iter()
            .map(|(tag, score)| TagPrediction {
                tag,
                score,
                confidence: logistic(score),
            })
            .collect();
        sort_by_descending_score(&mut out);
        out
    }

    /// Scores a whole slice of documents, in input order (parallel when
    /// cores are available, with an ordered reduction).
    pub fn scores_batch(&self, xs: &[SparseVector]) -> Vec<Vec<TagPrediction>> {
        parallel::par_map(xs, |x| self.scores(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilabel::{OneVsAllModel, OneVsAllTrainer};
    use crate::svm::{BinaryClassifier, KernelSvmTrainer, LinearSvmTrainer, SupportVector};
    use crate::MultiLabelExample;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn sparse(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied())
    }

    /// A small trained one-vs-all linear model over three separable tags.
    fn trained_linear() -> OneVsAllModel<LinearSvm> {
        let mut ds = crate::MultiLabelDataset::new();
        for i in 0..15 {
            let s = 1.0 + 0.05 * (i % 4) as f64;
            ds.push(MultiLabelExample::new(sparse(&[(0, s)]), [1]));
            ds.push(MultiLabelExample::new(sparse(&[(1, s)]), [2]));
            ds.push(MultiLabelExample::new(sparse(&[(2, s), (0, 0.2)]), [5]));
        }
        OneVsAllTrainer::default().train_linear(&ds, &LinearSvmTrainer::default())
    }

    #[test]
    fn matrix_scores_equal_scalar_scores_on_trained_model() {
        let model = trained_linear();
        let matrix = model.weight_matrix();
        assert_eq!(matrix.num_tags(), model.num_tags());
        for probe in [
            sparse(&[(0, 1.0)]),
            sparse(&[(1, 0.7), (2, 0.3)]),
            sparse(&[(9, 2.0)]),
            SparseVector::new(),
        ] {
            assert_eq!(matrix.scores(&probe), model.scores(&probe));
            assert_eq!(matrix.predict(&probe), model.predict(&probe));
        }
    }

    #[test]
    fn matrix_round_trips_to_identical_dense_model() {
        let model = trained_linear();
        let matrix = model.weight_matrix();
        let rebuilt = matrix.to_one_vs_all();
        assert_eq!(rebuilt.num_tags(), model.num_tags());
        for ((tag_a, a), (tag_b, b)) in model.iter().zip(rebuilt.iter()) {
            assert_eq!(tag_a, tag_b);
            assert_eq!(a.bias(), b.bias());
            // Same values at every index; the reconstructed vector may carry
            // trailing zeros up to the packed dimension.
            for j in 0..a.weights().len().max(b.weights().len()) {
                let wa = a.weights().get(j).copied().unwrap_or(0.0);
                let wb = b.weights().get(j).copied().unwrap_or(0.0);
                assert_eq!(wa, wb, "tag {tag_a} weight {j}");
            }
        }
        for probe in [
            sparse(&[(0, 1.0)]),
            sparse(&[(1, 0.7), (2, 0.3)]),
            SparseVector::new(),
        ] {
            assert_eq!(rebuilt.scores(&probe), model.scores(&probe));
            assert_eq!(rebuilt.predict(&probe), model.predict(&probe));
        }
    }

    #[test]
    fn matrix_decisions_match_per_classifier_decisions_bitwise() {
        let model = trained_linear();
        let matrix = model.weight_matrix();
        let probe = sparse(&[(0, 0.4), (1, -1.2), (2, 0.9)]);
        let decisions = matrix.decisions(&probe);
        for (slot, (tag, clf)) in model.iter().enumerate() {
            let scalar = clf.decision(&probe);
            assert_eq!(matrix.tags()[slot], tag);
            assert_eq!(decisions[slot].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn scores_batch_matches_individual_scores() {
        let model = trained_linear();
        let matrix = model.weight_matrix();
        let docs: Vec<SparseVector> = (0..20)
            .map(|i| sparse(&[(i % 3, 0.5 + 0.1 * i as f64), (3, -0.2)]))
            .collect();
        let batch = matrix.scores_batch(&docs);
        assert_eq!(batch.len(), docs.len());
        for (x, scores) in docs.iter().zip(&batch) {
            assert_eq!(scores, &matrix.scores(x));
        }
    }

    #[test]
    fn kernel_scorer_dedupes_shared_support_vectors() {
        // Two tags retaining the same two vectors: 4 scalar kernel terms but
        // only 2 distinct rows.
        let v1 = sparse(&[(0, 1.0)]);
        let v2 = sparse(&[(1, 1.0)]);
        let sv = |v: &SparseVector, label, alpha| SupportVector {
            vector: v.clone(),
            label,
            alpha,
        };
        let m1 = KernelSvm::from_support_vectors(
            vec![sv(&v1, true, 0.5), sv(&v2, false, 0.25)],
            0.1,
            Kernel::Linear,
        );
        let m2 = KernelSvm::from_support_vectors(
            vec![sv(&v2, true, 1.0), sv(&v1, false, 0.75)],
            -0.2,
            Kernel::Linear,
        );
        let models = BTreeMap::from([(3u32, m1), (8u32, m2)]);
        let scorer = BatchKernelScorer::from_classifiers(models.iter().map(|(&t, m)| (t, m)));
        assert_eq!(scorer.total_terms(), 4);
        assert_eq!(scorer.num_unique_vectors(), 2);
        let probe = sparse(&[(0, 0.3), (1, 0.6)]);
        for (tag, decision) in scorer.decisions(&probe) {
            assert_eq!(
                decision.to_bits(),
                models[&tag].decision(&probe).to_bits(),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn kernel_scorer_equals_scalar_on_trained_models() {
        let mut ds = crate::MultiLabelDataset::new();
        for i in 0..12 {
            let s = 0.9 + 0.05 * (i % 5) as f64;
            ds.push(MultiLabelExample::new(sparse(&[(0, s)]), [1]));
            ds.push(MultiLabelExample::new(sparse(&[(1, s)]), [2]));
        }
        let model = OneVsAllTrainer::default().train_kernel(&ds, &KernelSvmTrainer::default());
        let scorer = model.kernel_scorer();
        for probe in [sparse(&[(0, 1.0)]), sparse(&[(1, 0.5), (0, 0.1)])] {
            assert_eq!(scorer.scores(&probe), model.scores(&probe));
        }
        // Cascade-style sharing really happens: both tags draw SVs from the
        // same per-peer corpus.
        assert!(scorer.num_unique_vectors() <= scorer.total_terms());
    }

    fn arb_sparse(max_dim: u32, max_nnz: usize) -> impl Strategy<Value = SparseVector> {
        prop::collection::vec((0..max_dim, -2.0f64..2.0), 0..max_nnz)
            .prop_map(SparseVector::from_pairs)
    }

    /// Random dense weight rows (with deliberate exact zeros) for synthetic
    /// linear models, bypassing training so the property covers weight
    /// patterns training would rarely produce.
    fn arb_linear_models() -> impl Strategy<Value = Vec<(TagId, LinearSvm)>> {
        prop::collection::vec(
            (
                0u32..40,
                prop::collection::vec(-3.0f64..3.0, 0..12),
                -1.0f64..1.0,
            ),
            1..8,
        )
        .prop_map(|rows| {
            let mut out: BTreeMap<TagId, LinearSvm> = BTreeMap::new();
            for (tag, mut weights, bias) in rows {
                // Zero out every third entry so the CSR prune path is hit.
                for (i, w) in weights.iter_mut().enumerate() {
                    if i % 3 == 0 {
                        *w = 0.0;
                    }
                }
                out.insert(tag, LinearSvm::from_weights(weights, bias));
            }
            out.into_iter().collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matrix_equivalence_property(
            models in arb_linear_models(),
            x in arb_sparse(16, 10),
        ) {
            let scalar = OneVsAllModel::from_classifiers(
                models.iter().map(|(t, m)| (*t, m.clone())).collect(),
                0.0,
                1,
            );
            let matrix =
                TagWeightMatrix::from_classifiers(models.iter().map(|(t, m)| (*t, m)), 0.0, 1);
            prop_assert_eq!(matrix.scores(&x), scalar.scores(&x));
            prop_assert_eq!(matrix.predict(&x), scalar.predict(&x));
        }

        #[test]
        fn kernel_equivalence_property(
            svs in prop::collection::vec(
                (arb_sparse(12, 6), any::<bool>(), 0.01f64..2.0),
                1..10,
            ),
            x in arb_sparse(12, 8),
        ) {
            // Two tags sampling overlapping subsets of the same SV pool, as a
            // cascade produces.
            let pool: Vec<SupportVector> = svs
                .into_iter()
                .map(|(vector, label, alpha)| SupportVector { vector, label, alpha })
                .collect();
            let take = |step: usize| -> Vec<SupportVector> {
                pool.iter().step_by(step).cloned().collect()
            };
            let kernel = Kernel::Rbf { gamma: 0.8 };
            let m1 = KernelSvm::from_support_vectors(take(1), 0.3, kernel);
            let m2 = KernelSvm::from_support_vectors(take(2), -0.1, kernel);
            let models = BTreeMap::from([(1u32, m1), (2u32, m2)]);
            let scorer =
                BatchKernelScorer::from_classifiers(models.iter().map(|(&t, m)| (t, m)));
            let scalar = OneVsAllModel::from_classifiers(models, 0.0, 1);
            prop_assert_eq!(scorer.scores(&x), scalar.scores(&x));
        }
    }
}
