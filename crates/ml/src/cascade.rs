//! Cascade SVM merging, the core of CEMPaR's super-peer aggregation.
//!
//! In the cascade SVM paradigm, models trained on disjoint partitions are
//! combined by pooling their support vectors and retraining an SVM on the
//! pooled set; because non-support vectors cannot become support vectors of the
//! combined problem's solution in practice, this approximates training on the
//! union of the partitions at a fraction of the cost. CEMPaR's super-peers use
//! exactly this to build "regional cascaded models" from the local models that
//! peers propagate to them (§2 of the paper).

use crate::kernel::Kernel;
use crate::svm::{KernelSvm, KernelSvmTrainer, SupportVector};
use serde::{Deserialize, Serialize};
use textproc::SparseVector;

/// Configuration of the cascade merge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CascadeConfig {
    /// Trainer used for the retraining step at each cascade level.
    pub trainer: KernelSvmTrainer,
    /// When `true` (the default) the pooled support vectors are retrained;
    /// when `false` the pooled SVs are used as-is with their original alphas
    /// (a cheaper but cruder merge, kept for the ablation experiment A2).
    pub retrain: bool,
    /// Maximum number of models merged per cascade step; larger groups are
    /// merged hierarchically. 0 means "merge everything in one step".
    pub fan_in: usize,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        Self {
            trainer: KernelSvmTrainer::default(),
            retrain: true,
            fan_in: 0,
        }
    }
}

/// Cascade-SVM combiner.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CascadeSvm {
    config: CascadeConfig,
}

impl CascadeSvm {
    /// Creates a combiner with the given configuration.
    pub fn new(config: CascadeConfig) -> Self {
        Self { config }
    }

    /// Creates a combiner with default configuration but a specific kernel.
    pub fn with_kernel(kernel: Kernel) -> Self {
        Self {
            config: CascadeConfig {
                trainer: KernelSvmTrainer::with_kernel(kernel),
                ..Default::default()
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CascadeConfig {
        &self.config
    }

    /// Merges several local models into one cascaded model.
    ///
    /// Returns `None` when `models` is empty or none of them carries a support
    /// vector.
    pub fn merge(&self, models: &[KernelSvm]) -> Option<KernelSvm> {
        if models.is_empty() {
            return None;
        }
        if models.len() == 1 {
            return Some(models[0].clone());
        }
        let fan_in = if self.config.fan_in == 0 {
            models.len()
        } else {
            self.config.fan_in.max(2)
        };
        let mut level: Vec<KernelSvm> = models.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(fan_in));
            for group in level.chunks(fan_in) {
                next.push(self.merge_group(group)?);
            }
            level = next;
        }
        level.pop()
    }

    fn merge_group(&self, models: &[KernelSvm]) -> Option<KernelSvm> {
        // Pooling copies `SupportVector`s, but their vectors share storage
        // (`SparseVector` clones are reference-count bumps), so a cascade
        // level never duplicates the underlying document entries.
        let pooled: Vec<SupportVector> = models
            .iter()
            .flat_map(|m| m.support_vectors().iter().cloned())
            .collect();
        if pooled.is_empty() {
            return None;
        }
        let kernel = self.config.trainer.kernel;
        if !self.config.retrain {
            // Keep the original dual coefficients, average the biases.
            let bias = models.iter().map(KernelSvm::bias).sum::<f64>() / models.len() as f64;
            // Normalize alphas by the number of models so votes stay bounded.
            let scale = 1.0 / models.len() as f64;
            let svs = pooled
                .into_iter()
                .map(|mut sv| {
                    sv.alpha *= scale;
                    sv
                })
                .collect();
            return Some(KernelSvm::from_support_vectors(svs, bias, kernel));
        }
        // Retrain on the pooled support vectors only when both classes are
        // present; otherwise fall back to the coefficient-preserving merge.
        let has_pos = pooled.iter().any(|sv| sv.label);
        let has_neg = pooled.iter().any(|sv| !sv.label);
        if !(has_pos && has_neg) {
            let bias = models.iter().map(KernelSvm::bias).sum::<f64>() / models.len() as f64;
            return Some(KernelSvm::from_support_vectors(pooled, bias, kernel));
        }
        let xs: Vec<SparseVector> = pooled.iter().map(|sv| sv.vector.clone()).collect();
        let ys: Vec<bool> = pooled.iter().map(|sv| sv.label).collect();
        Some(self.config.trainer.train(&xs, &ys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::{accuracy_on, BinaryClassifier};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn separable(n: usize, seed: u64) -> (Vec<SparseVector>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let y = rng.gen_bool(0.5);
            let offset = if y { 1.0 } else { -1.0 };
            xs.push(SparseVector::from_pairs([
                (0, offset + rng.gen_range(-0.3..0.3)),
                (1, offset + rng.gen_range(-0.3..0.3)),
            ]));
            ys.push(y);
        }
        (xs, ys)
    }

    fn partitioned_models(
        parts: usize,
        per_part: usize,
        seed: u64,
    ) -> (Vec<KernelSvm>, Vec<SparseVector>, Vec<bool>) {
        let (xs, ys) = separable(parts * per_part, seed);
        let trainer = KernelSvmTrainer::with_kernel(Kernel::Linear);
        let mut models = Vec::new();
        for p in 0..parts {
            let lo = p * per_part;
            let hi = lo + per_part;
            models.push(trainer.train(&xs[lo..hi], &ys[lo..hi]));
        }
        (models, xs, ys)
    }

    #[test]
    fn merged_model_is_accurate_on_the_union() {
        let (models, xs, ys) = partitioned_models(4, 40, 21);
        let cascade = CascadeSvm::with_kernel(Kernel::Linear);
        let merged = cascade.merge(&models).expect("merge produces a model");
        assert!(accuracy_on(&merged, &xs, &ys) > 0.95);
    }

    #[test]
    fn merged_model_has_fewer_svs_than_pooled_training_data() {
        let (models, xs, _ys) = partitioned_models(4, 50, 22);
        let cascade = CascadeSvm::with_kernel(Kernel::Linear);
        let merged = cascade.merge(&models).unwrap();
        assert!(merged.num_support_vectors() < xs.len());
        assert!(merged.num_support_vectors() > 0);
    }

    #[test]
    fn merge_of_single_model_is_identity() {
        let (models, xs, _) = partitioned_models(1, 30, 23);
        let cascade = CascadeSvm::with_kernel(Kernel::Linear);
        let merged = cascade.merge(&models).unwrap();
        for x in &xs {
            assert!((merged.decision(x) - models[0].decision(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_of_empty_slice_is_none() {
        let cascade = CascadeSvm::default();
        assert!(cascade.merge(&[]).is_none());
    }

    #[test]
    fn no_retrain_merge_still_classifies() {
        let (models, xs, ys) = partitioned_models(3, 40, 24);
        let cascade = CascadeSvm::new(CascadeConfig {
            trainer: KernelSvmTrainer::with_kernel(Kernel::Linear),
            retrain: false,
            fan_in: 0,
        });
        let merged = cascade.merge(&models).unwrap();
        assert!(accuracy_on(&merged, &xs, &ys) > 0.85);
    }

    #[test]
    fn hierarchical_fan_in_matches_flat_merge_quality() {
        let (models, xs, ys) = partitioned_models(8, 25, 25);
        let flat = CascadeSvm::with_kernel(Kernel::Linear)
            .merge(&models)
            .unwrap();
        let hier = CascadeSvm::new(CascadeConfig {
            trainer: KernelSvmTrainer::with_kernel(Kernel::Linear),
            retrain: true,
            fan_in: 2,
        })
        .merge(&models)
        .unwrap();
        let acc_flat = accuracy_on(&flat, &xs, &ys);
        let acc_hier = accuracy_on(&hier, &xs, &ys);
        assert!(acc_hier > acc_flat - 0.1, "flat {acc_flat} hier {acc_hier}");
    }

    #[test]
    fn single_class_models_merge_without_retraining() {
        // Two "models" whose SVs are all positive: retraining is impossible,
        // the merge must still return a usable model.
        let sv = |v: f64| SupportVector {
            vector: SparseVector::from_pairs([(0, v)]),
            label: true,
            alpha: 1.0,
        };
        let m1 = KernelSvm::from_support_vectors(vec![sv(1.0)], 0.1, Kernel::Linear);
        let m2 = KernelSvm::from_support_vectors(vec![sv(2.0)], 0.3, Kernel::Linear);
        let merged = CascadeSvm::with_kernel(Kernel::Linear)
            .merge(&[m1, m2])
            .unwrap();
        assert_eq!(merged.num_support_vectors(), 2);
        assert!(merged.predict(&SparseVector::from_pairs([(0, 1.5)])));
    }
}
