//! Evaluation metrics for binary and multi-label tagging.
//!
//! The experiment harness reports micro/macro F1, Hamming loss, subset accuracy
//! and per-tag precision/recall, the standard measures for automated-tagging
//! quality.

use crate::data::TagId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Confusion-matrix-derived metrics for a single binary problem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl BinaryMetrics {
    /// Accumulates one prediction.
    pub fn observe(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Computes metrics from parallel prediction/truth slices.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len());
        let mut m = Self::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            m.observe(p, a);
        }
        m
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions (1.0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision `tp / (tp + fp)` (1.0 when no positive predictions).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall `tp / (tp + fn)` (1.0 when no actual positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges counts from another confusion matrix.
    pub fn merge(&mut self, other: &BinaryMetrics) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

/// Multi-label evaluation over a set of documents.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelMetrics {
    /// Micro-averaged confusion counts (pooled over all tags and documents).
    pub micro: BinaryMetrics,
    /// Per-tag confusion counts.
    pub per_tag: Vec<(TagId, BinaryMetrics)>,
    /// Number of evaluated documents.
    pub num_docs: u64,
    /// Sum over documents of `|pred Δ truth| / |universe|` (Hamming loss numerator).
    hamming_sum: f64,
    /// Number of documents whose predicted set equals the true set exactly.
    exact_matches: u64,
}

impl MultiLabelMetrics {
    /// Evaluates predictions against ground truth.
    ///
    /// `universe` is the full tag universe `Y` used for the Hamming-loss
    /// denominator; it must contain every tag appearing in either set.
    pub fn evaluate(
        predictions: &[BTreeSet<TagId>],
        truths: &[BTreeSet<TagId>],
        universe: &BTreeSet<TagId>,
    ) -> Self {
        assert_eq!(
            predictions.len(),
            truths.len(),
            "predictions and truths must have equal length"
        );
        let mut micro = BinaryMetrics::default();
        let mut per_tag: Vec<(TagId, BinaryMetrics)> = universe
            .iter()
            .map(|&t| (t, BinaryMetrics::default()))
            .collect();
        let mut hamming_sum = 0.0;
        let mut exact_matches = 0;
        for (pred, truth) in predictions.iter().zip(truths) {
            if pred == truth {
                exact_matches += 1;
            }
            let sym_diff = pred.symmetric_difference(truth).count();
            if !universe.is_empty() {
                hamming_sum += sym_diff as f64 / universe.len() as f64;
            }
            for (tag, m) in per_tag.iter_mut() {
                let p = pred.contains(tag);
                let a = truth.contains(tag);
                m.observe(p, a);
                micro.observe(p, a);
            }
        }
        Self {
            micro,
            per_tag,
            num_docs: predictions.len() as u64,
            hamming_sum,
            exact_matches,
        }
    }

    /// Micro-averaged F1 (pooled confusion matrix).
    pub fn micro_f1(&self) -> f64 {
        self.micro.f1()
    }

    /// Micro-averaged precision.
    pub fn micro_precision(&self) -> f64 {
        self.micro.precision()
    }

    /// Micro-averaged recall.
    pub fn micro_recall(&self) -> f64 {
        self.micro.recall()
    }

    /// Macro-averaged F1 (unweighted mean of per-tag F1; 1.0 with no tags).
    pub fn macro_f1(&self) -> f64 {
        if self.per_tag.is_empty() {
            return 1.0;
        }
        self.per_tag.iter().map(|(_, m)| m.f1()).sum::<f64>() / self.per_tag.len() as f64
    }

    /// Hamming loss: average fraction of tags mispredicted per document.
    pub fn hamming_loss(&self) -> f64 {
        if self.num_docs == 0 {
            return 0.0;
        }
        self.hamming_sum / self.num_docs as f64
    }

    /// Subset (exact-match) accuracy.
    pub fn subset_accuracy(&self) -> f64 {
        if self.num_docs == 0 {
            return 1.0;
        }
        self.exact_matches as f64 / self.num_docs as f64
    }

    /// Per-tag metrics, sorted by tag id.
    pub fn per_tag(&self) -> &[(TagId, BinaryMetrics)] {
        &self.per_tag
    }

    /// Merges another evaluation over the **same tag universe** into this
    /// one, pooling confusion counts, Hamming numerators and exact-match
    /// counts as if both document sets had been evaluated together.
    ///
    /// # Panics
    /// If the two evaluations were computed over different universes.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.per_tag.len(),
            other.per_tag.len(),
            "cannot merge metrics over different tag universes"
        );
        for ((tag, m), (other_tag, other_m)) in self.per_tag.iter_mut().zip(&other.per_tag) {
            assert_eq!(
                tag, other_tag,
                "cannot merge metrics over different tag universes"
            );
            m.merge(other_m);
        }
        self.micro.merge(&other.micro);
        self.num_docs += other.num_docs;
        self.hamming_sum += other.hamming_sum;
        self.exact_matches += other.exact_matches;
    }

    /// Number of evaluated documents actually carrying each tag (`tp + fn`),
    /// sorted by tag id — the support used for head/tail stratification.
    pub fn tag_support(&self) -> Vec<(TagId, u64)> {
        self.per_tag
            .iter()
            .map(|(t, m)| (*t, m.tp + m.fn_))
            .collect()
    }

    /// Macro-F1 restricted to a tag subset (1.0 when the subset is empty,
    /// matching [`Self::macro_f1`]'s empty-universe convention).
    pub fn macro_f1_over(&self, tags: &BTreeSet<TagId>) -> f64 {
        let selected: Vec<f64> = self
            .per_tag
            .iter()
            .filter(|(t, _)| tags.contains(t))
            .map(|(_, m)| m.f1())
            .collect();
        if selected.is_empty() {
            return 1.0;
        }
        selected.iter().sum::<f64>() / selected.len() as f64
    }

    /// Stratifies the evaluation by tag-popularity rank: the `head_fraction`
    /// most popular tags (by support in this evaluation's ground truth, ties
    /// broken toward lower tag ids) against the long tail.
    ///
    /// Tags with zero support are excluded from both strata — a tag that is
    /// never true and never predicted scores a degenerate F1 of 1.0, which
    /// would inflate the tail average exactly where it must discriminate.
    pub fn head_tail(&self, head_fraction: f64) -> HeadTailSplit {
        let mut supported: Vec<(TagId, u64)> = self
            .tag_support()
            .into_iter()
            .filter(|&(_, s)| s > 0)
            .collect();
        supported.sort_by_key(|&(t, s)| (std::cmp::Reverse(s), t));
        let head_count = if supported.is_empty() {
            0
        } else {
            ((head_fraction.clamp(0.0, 1.0) * supported.len() as f64).ceil() as usize)
                .clamp(1, supported.len())
        };
        let head_tags: BTreeSet<TagId> = supported[..head_count].iter().map(|&(t, _)| t).collect();
        let tail_tags: BTreeSet<TagId> = supported[head_count..].iter().map(|&(t, _)| t).collect();
        HeadTailSplit {
            head_macro_f1: self.macro_f1_over(&head_tags),
            tail_macro_f1: self.macro_f1_over(&tail_tags),
            head_tags,
            tail_tags,
        }
    }
}

/// The head/tail stratification of a multi-label evaluation — popular tags
/// versus the long tail, the axis on which collaborative and local-only
/// tagging actually differ under skewed workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadTailSplit {
    /// The most popular tags (by ground-truth support).
    pub head_tags: BTreeSet<TagId>,
    /// The remaining supported tags.
    pub tail_tags: BTreeSet<TagId>,
    /// Macro-F1 over the head stratum.
    pub head_macro_f1: f64,
    /// Macro-F1 over the tail stratum.
    pub tail_macro_f1: f64,
}

/// A multi-label evaluation stratified by a per-document group key (in the
/// P2P setting: the owning peer), so per-group metrics — and merged views
/// over group subsets such as cold-start peers — can be reported.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupedMetrics {
    groups: Vec<(usize, MultiLabelMetrics)>,
    universe: BTreeSet<TagId>,
}

impl GroupedMetrics {
    /// Evaluates predictions against ground truth, accumulating a separate
    /// [`MultiLabelMetrics`] per group; `group_of[i]` is document `i`'s group
    /// key.
    pub fn evaluate(
        predictions: &[BTreeSet<TagId>],
        truths: &[BTreeSet<TagId>],
        universe: &BTreeSet<TagId>,
        group_of: &[usize],
    ) -> Self {
        assert_eq!(
            predictions.len(),
            group_of.len(),
            "every document needs a group key"
        );
        type TagSets = (Vec<BTreeSet<TagId>>, Vec<BTreeSet<TagId>>);
        let mut by_group: std::collections::BTreeMap<usize, TagSets> =
            std::collections::BTreeMap::new();
        for ((pred, truth), &g) in predictions.iter().zip(truths).zip(group_of) {
            let (p, t) = by_group.entry(g).or_default();
            p.push(pred.clone());
            t.push(truth.clone());
        }
        Self {
            groups: by_group
                .into_iter()
                .map(|(g, (p, t))| (g, MultiLabelMetrics::evaluate(&p, &t, universe)))
                .collect(),
            universe: universe.clone(),
        }
    }

    /// Number of groups with at least one evaluated document.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no group was evaluated.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The metrics of one group, if it had any evaluated documents.
    pub fn group(&self, g: usize) -> Option<&MultiLabelMetrics> {
        self.groups
            .iter()
            .find(|(key, _)| *key == g)
            .map(|(_, m)| m)
    }

    /// All groups with their metrics, sorted by group key.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &MultiLabelMetrics)> {
        self.groups.iter().map(|(g, m)| (*g, m))
    }

    /// Pools the evaluations of a group subset into one [`MultiLabelMetrics`]
    /// (groups without evaluated documents are skipped). The stratified view
    /// behind cold-start reporting: pass the peers with the fewest manual
    /// taggings.
    pub fn merged_over<I: IntoIterator<Item = usize>>(&self, groups: I) -> MultiLabelMetrics {
        let mut merged = MultiLabelMetrics::evaluate(&[], &[], &self.universe);
        for g in groups {
            if let Some(m) = self.group(g) {
                merged.merge(m);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tags: &[TagId]) -> BTreeSet<TagId> {
        tags.iter().copied().collect()
    }

    #[test]
    fn binary_metrics_basic() {
        let m = BinaryMetrics::from_predictions(
            &[true, true, false, false],
            &[true, false, true, false],
        );
        assert_eq!(m.tp, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.tn, 1);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.f1(), 0.5);
    }

    #[test]
    fn binary_metrics_degenerate_cases() {
        let empty = BinaryMetrics::default();
        assert_eq!(empty.accuracy(), 1.0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);

        let all_negative = BinaryMetrics::from_predictions(&[false, false], &[false, false]);
        assert_eq!(all_negative.accuracy(), 1.0);
        assert_eq!(all_negative.f1(), 1.0);
    }

    #[test]
    fn binary_metrics_merge() {
        let mut a = BinaryMetrics::from_predictions(&[true], &[true]);
        let b = BinaryMetrics::from_predictions(&[false], &[true]);
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fn_, 1);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn perfect_multilabel_prediction() {
        let truth = vec![set(&[1, 2]), set(&[3])];
        let universe = set(&[1, 2, 3]);
        let m = MultiLabelMetrics::evaluate(&truth, &truth, &universe);
        assert_eq!(m.micro_f1(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.hamming_loss(), 0.0);
        assert_eq!(m.subset_accuracy(), 1.0);
    }

    #[test]
    fn completely_wrong_prediction() {
        let pred = vec![set(&[3])];
        let truth = vec![set(&[1, 2])];
        let universe = set(&[1, 2, 3]);
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &universe);
        assert_eq!(m.micro_f1(), 0.0);
        assert_eq!(m.subset_accuracy(), 0.0);
        assert!((m.hamming_loss() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        let pred = vec![set(&[1, 3])];
        let truth = vec![set(&[1, 2])];
        let universe = set(&[1, 2, 3, 4]);
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &universe);
        // tp=1 (tag1), fp=1 (tag3), fn=1 (tag2), tn=1 (tag4)
        assert_eq!(m.micro.tp, 1);
        assert_eq!(m.micro.fp, 1);
        assert_eq!(m.micro.fn_, 1);
        assert_eq!(m.micro.tn, 1);
        assert!((m.hamming_loss() - 0.5).abs() < 1e-12);
        assert_eq!(m.subset_accuracy(), 0.0);
    }

    #[test]
    fn macro_f1_differs_from_micro_with_imbalanced_tags() {
        // Tag 1 appears often and is predicted well; tag 2 is rare and always missed.
        let pred = vec![set(&[1]), set(&[1]), set(&[1]), set(&[])];
        let truth = vec![set(&[1]), set(&[1]), set(&[1]), set(&[2])];
        let universe = set(&[1, 2]);
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &universe);
        assert!(m.micro_f1() > m.macro_f1());
    }

    #[test]
    fn empty_evaluation() {
        let m = MultiLabelMetrics::evaluate(&[], &[], &set(&[1]));
        assert_eq!(m.num_docs, 0);
        assert_eq!(m.hamming_loss(), 0.0);
        assert_eq!(m.subset_accuracy(), 1.0);
    }

    #[test]
    fn merge_pools_two_evaluations_like_one() {
        let universe = set(&[1, 2, 3]);
        let pred_a = vec![set(&[1]), set(&[2, 3])];
        let truth_a = vec![set(&[1, 2]), set(&[3])];
        let pred_b = vec![set(&[3])];
        let truth_b = vec![set(&[1])];
        let mut merged = MultiLabelMetrics::evaluate(&pred_a, &truth_a, &universe);
        merged.merge(&MultiLabelMetrics::evaluate(&pred_b, &truth_b, &universe));
        let pooled_pred: Vec<_> = pred_a.iter().chain(&pred_b).cloned().collect();
        let pooled_truth: Vec<_> = truth_a.iter().chain(&truth_b).cloned().collect();
        let pooled = MultiLabelMetrics::evaluate(&pooled_pred, &pooled_truth, &universe);
        assert_eq!(merged, pooled);
    }

    #[test]
    #[should_panic(expected = "different tag universes")]
    fn merge_rejects_mismatched_universes() {
        let mut a = MultiLabelMetrics::evaluate(&[], &[], &set(&[1, 2]));
        let b = MultiLabelMetrics::evaluate(&[], &[], &set(&[1, 3]));
        a.merge(&b);
    }

    #[test]
    fn tag_support_counts_actual_positives() {
        let pred = vec![set(&[1]), set(&[])];
        let truth = vec![set(&[1, 2]), set(&[2])];
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &set(&[1, 2, 3]));
        assert_eq!(m.tag_support(), vec![(1, 1), (2, 2), (3, 0)]);
    }

    #[test]
    fn head_tail_splits_by_support_and_excludes_unsupported_tags() {
        // Tag 1: support 3, predicted perfectly. Tag 2: support 1, always
        // missed. Tag 3: zero support (would score a degenerate 1.0).
        let pred = vec![set(&[1]), set(&[1]), set(&[1]), set(&[])];
        let truth = vec![set(&[1]), set(&[1]), set(&[1, 2]), set(&[])];
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &set(&[1, 2, 3]));
        let split = m.head_tail(0.5);
        assert_eq!(split.head_tags, set(&[1]));
        assert_eq!(split.tail_tags, set(&[2]), "zero-support tag 3 excluded");
        assert_eq!(split.head_macro_f1, 1.0);
        assert_eq!(split.tail_macro_f1, 0.0);
    }

    #[test]
    fn head_tail_ranks_ties_toward_lower_tag_ids() {
        // Both tags have support 1; the generator orders tag ids by
        // popularity, so the lower id wins the head slot.
        let pred = vec![set(&[1, 2])];
        let truth = vec![set(&[1, 2])];
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &set(&[1, 2]));
        let split = m.head_tail(0.5);
        assert_eq!(split.head_tags, set(&[1]));
        assert_eq!(split.tail_tags, set(&[2]));
    }

    #[test]
    fn head_tail_of_empty_evaluation_is_empty() {
        let m = MultiLabelMetrics::evaluate(&[], &[], &set(&[1, 2]));
        let split = m.head_tail(0.3);
        assert!(split.head_tags.is_empty());
        assert!(split.tail_tags.is_empty());
        assert_eq!(split.head_macro_f1, 1.0);
        assert_eq!(split.tail_macro_f1, 1.0);
    }

    #[test]
    fn macro_f1_over_subset_averages_only_selected_tags() {
        let pred = vec![set(&[1]), set(&[])];
        let truth = vec![set(&[1]), set(&[2])];
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &set(&[1, 2]));
        assert_eq!(m.macro_f1_over(&set(&[1])), 1.0);
        assert_eq!(m.macro_f1_over(&set(&[2])), 0.0);
        assert_eq!(m.macro_f1_over(&set(&[])), 1.0);
        assert!((m.macro_f1_over(&set(&[1, 2])) - m.macro_f1()).abs() < 1e-12);
    }

    #[test]
    fn grouped_metrics_stratify_by_group_and_merge_back() {
        let universe = set(&[1, 2]);
        let predictions = vec![set(&[1]), set(&[2]), set(&[1])];
        let truths = vec![set(&[1]), set(&[1]), set(&[1])];
        let groups = vec![0, 7, 0];
        let g = GroupedMetrics::evaluate(&predictions, &truths, &universe, &groups);
        assert_eq!(g.len(), 2);
        assert_eq!(g.group(0).unwrap().num_docs, 2);
        assert_eq!(g.group(7).unwrap().num_docs, 1);
        assert!(g.group(3).is_none());
        assert_eq!(g.group(0).unwrap().micro_f1(), 1.0);
        assert_eq!(g.group(7).unwrap().micro_f1(), 0.0);
        // Merging every group reproduces the flat evaluation.
        let all = g.merged_over(vec![0, 7]);
        let flat = MultiLabelMetrics::evaluate(&predictions, &truths, &universe);
        assert_eq!(all, flat);
        // Merging a subset (with an absent key, which is skipped) pools only
        // that subset's documents.
        let cold = g.merged_over(vec![7, 3]);
        assert_eq!(cold.num_docs, 1);
        assert_eq!(cold.micro_f1(), 0.0);
    }
}
