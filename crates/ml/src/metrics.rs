//! Evaluation metrics for binary and multi-label tagging.
//!
//! The experiment harness reports micro/macro F1, Hamming loss, subset accuracy
//! and per-tag precision/recall, the standard measures for automated-tagging
//! quality.

use crate::data::TagId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Confusion-matrix-derived metrics for a single binary problem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl BinaryMetrics {
    /// Accumulates one prediction.
    pub fn observe(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Computes metrics from parallel prediction/truth slices.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len());
        let mut m = Self::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            m.observe(p, a);
        }
        m
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions (1.0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision `tp / (tp + fp)` (1.0 when no positive predictions).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall `tp / (tp + fn)` (1.0 when no actual positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges counts from another confusion matrix.
    pub fn merge(&mut self, other: &BinaryMetrics) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

/// Multi-label evaluation over a set of documents.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelMetrics {
    /// Micro-averaged confusion counts (pooled over all tags and documents).
    pub micro: BinaryMetrics,
    /// Per-tag confusion counts.
    pub per_tag: Vec<(TagId, BinaryMetrics)>,
    /// Number of evaluated documents.
    pub num_docs: u64,
    /// Sum over documents of `|pred Δ truth| / |universe|` (Hamming loss numerator).
    hamming_sum: f64,
    /// Number of documents whose predicted set equals the true set exactly.
    exact_matches: u64,
}

impl MultiLabelMetrics {
    /// Evaluates predictions against ground truth.
    ///
    /// `universe` is the full tag universe `Y` used for the Hamming-loss
    /// denominator; it must contain every tag appearing in either set.
    pub fn evaluate(
        predictions: &[BTreeSet<TagId>],
        truths: &[BTreeSet<TagId>],
        universe: &BTreeSet<TagId>,
    ) -> Self {
        assert_eq!(
            predictions.len(),
            truths.len(),
            "predictions and truths must have equal length"
        );
        let mut micro = BinaryMetrics::default();
        let mut per_tag: Vec<(TagId, BinaryMetrics)> = universe
            .iter()
            .map(|&t| (t, BinaryMetrics::default()))
            .collect();
        let mut hamming_sum = 0.0;
        let mut exact_matches = 0;
        for (pred, truth) in predictions.iter().zip(truths) {
            if pred == truth {
                exact_matches += 1;
            }
            let sym_diff = pred.symmetric_difference(truth).count();
            if !universe.is_empty() {
                hamming_sum += sym_diff as f64 / universe.len() as f64;
            }
            for (tag, m) in per_tag.iter_mut() {
                let p = pred.contains(tag);
                let a = truth.contains(tag);
                m.observe(p, a);
                micro.observe(p, a);
            }
        }
        Self {
            micro,
            per_tag,
            num_docs: predictions.len() as u64,
            hamming_sum,
            exact_matches,
        }
    }

    /// Micro-averaged F1 (pooled confusion matrix).
    pub fn micro_f1(&self) -> f64 {
        self.micro.f1()
    }

    /// Micro-averaged precision.
    pub fn micro_precision(&self) -> f64 {
        self.micro.precision()
    }

    /// Micro-averaged recall.
    pub fn micro_recall(&self) -> f64 {
        self.micro.recall()
    }

    /// Macro-averaged F1 (unweighted mean of per-tag F1; 1.0 with no tags).
    pub fn macro_f1(&self) -> f64 {
        if self.per_tag.is_empty() {
            return 1.0;
        }
        self.per_tag.iter().map(|(_, m)| m.f1()).sum::<f64>() / self.per_tag.len() as f64
    }

    /// Hamming loss: average fraction of tags mispredicted per document.
    pub fn hamming_loss(&self) -> f64 {
        if self.num_docs == 0 {
            return 0.0;
        }
        self.hamming_sum / self.num_docs as f64
    }

    /// Subset (exact-match) accuracy.
    pub fn subset_accuracy(&self) -> f64 {
        if self.num_docs == 0 {
            return 1.0;
        }
        self.exact_matches as f64 / self.num_docs as f64
    }

    /// Per-tag metrics, sorted by tag id.
    pub fn per_tag(&self) -> &[(TagId, BinaryMetrics)] {
        &self.per_tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tags: &[TagId]) -> BTreeSet<TagId> {
        tags.iter().copied().collect()
    }

    #[test]
    fn binary_metrics_basic() {
        let m = BinaryMetrics::from_predictions(
            &[true, true, false, false],
            &[true, false, true, false],
        );
        assert_eq!(m.tp, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.tn, 1);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.f1(), 0.5);
    }

    #[test]
    fn binary_metrics_degenerate_cases() {
        let empty = BinaryMetrics::default();
        assert_eq!(empty.accuracy(), 1.0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);

        let all_negative = BinaryMetrics::from_predictions(&[false, false], &[false, false]);
        assert_eq!(all_negative.accuracy(), 1.0);
        assert_eq!(all_negative.f1(), 1.0);
    }

    #[test]
    fn binary_metrics_merge() {
        let mut a = BinaryMetrics::from_predictions(&[true], &[true]);
        let b = BinaryMetrics::from_predictions(&[false], &[true]);
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fn_, 1);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn perfect_multilabel_prediction() {
        let truth = vec![set(&[1, 2]), set(&[3])];
        let universe = set(&[1, 2, 3]);
        let m = MultiLabelMetrics::evaluate(&truth, &truth, &universe);
        assert_eq!(m.micro_f1(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.hamming_loss(), 0.0);
        assert_eq!(m.subset_accuracy(), 1.0);
    }

    #[test]
    fn completely_wrong_prediction() {
        let pred = vec![set(&[3])];
        let truth = vec![set(&[1, 2])];
        let universe = set(&[1, 2, 3]);
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &universe);
        assert_eq!(m.micro_f1(), 0.0);
        assert_eq!(m.subset_accuracy(), 0.0);
        assert!((m.hamming_loss() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        let pred = vec![set(&[1, 3])];
        let truth = vec![set(&[1, 2])];
        let universe = set(&[1, 2, 3, 4]);
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &universe);
        // tp=1 (tag1), fp=1 (tag3), fn=1 (tag2), tn=1 (tag4)
        assert_eq!(m.micro.tp, 1);
        assert_eq!(m.micro.fp, 1);
        assert_eq!(m.micro.fn_, 1);
        assert_eq!(m.micro.tn, 1);
        assert!((m.hamming_loss() - 0.5).abs() < 1e-12);
        assert_eq!(m.subset_accuracy(), 0.0);
    }

    #[test]
    fn macro_f1_differs_from_micro_with_imbalanced_tags() {
        // Tag 1 appears often and is predicted well; tag 2 is rare and always missed.
        let pred = vec![set(&[1]), set(&[1]), set(&[1]), set(&[])];
        let truth = vec![set(&[1]), set(&[1]), set(&[1]), set(&[2])];
        let universe = set(&[1, 2]);
        let m = MultiLabelMetrics::evaluate(&pred, &truth, &universe);
        assert!(m.micro_f1() > m.macro_f1());
    }

    #[test]
    fn empty_evaluation() {
        let m = MultiLabelMetrics::evaluate(&[], &[], &set(&[1]));
        assert_eq!(m.num_docs, 0);
        assert_eq!(m.hamming_loss(), 0.0);
        assert_eq!(m.subset_accuracy(), 1.0);
    }
}
