//! Kernel functions for the non-linear SVMs used by CEMPaR.

use serde::{Deserialize, Serialize};
use textproc::SparseVector;

/// A Mercer kernel `K(x, z)` on sparse document vectors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Plain dot product `x · z`.
    Linear,
    /// Radial basis function `exp(-gamma * ||x - z||²)`.
    Rbf {
        /// Width parameter; larger values make the kernel more local.
        gamma: f64,
    },
    /// Polynomial kernel `(gamma * x·z + coef0)^degree`.
    Polynomial {
        /// Scale applied to the dot product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
}

impl Default for Kernel {
    fn default() -> Self {
        // RBF is the usual default for text cascade SVMs; gamma = 1.0 works
        // well with L2-normalized TF-IDF vectors (||x - z||² ∈ [0, 2]).
        Kernel::Rbf { gamma: 1.0 }
    }
}

impl Kernel {
    /// Evaluates the kernel on two sparse vectors.
    pub fn eval(&self, x: &SparseVector, z: &SparseVector) -> f64 {
        match *self {
            Kernel::Linear => x.dot(z),
            Kernel::Rbf { gamma } => (-gamma * x.distance_sq(z).max(0.0)).exp(),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * x.dot(z) + coef0).powi(degree as i32),
        }
    }

    /// A human-readable name for logs and experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Linear => "linear",
            Kernel::Rbf { .. } => "rbf",
            Kernel::Polynomial { .. } => "polynomial",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn linear_kernel_is_dot_product() {
        let a = v(&[(0, 1.0), (1, 2.0)]);
        let b = v(&[(1, 3.0), (2, 4.0)]);
        assert_eq!(Kernel::Linear.eval(&a, &b), 6.0);
    }

    #[test]
    fn rbf_is_one_on_identical_inputs() {
        let a = v(&[(0, 0.5), (3, 1.5)]);
        let k = Kernel::Rbf { gamma: 0.7 };
        assert!((k.eval(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decreases_with_distance() {
        let k = Kernel::Rbf { gamma: 1.0 };
        let a = v(&[(0, 1.0)]);
        let near = v(&[(0, 0.9)]);
        let far = v(&[(1, 1.0)]);
        assert!(k.eval(&a, &near) > k.eval(&a, &far));
        assert!(k.eval(&a, &far) > 0.0);
    }

    #[test]
    fn polynomial_kernel() {
        let k = Kernel::Polynomial {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        let a = v(&[(0, 1.0)]);
        let b = v(&[(0, 2.0)]);
        assert!((k.eval(&a, &b) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_symmetry() {
        let kernels = [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.5 },
            Kernel::Polynomial {
                gamma: 0.3,
                coef0: 1.0,
                degree: 3,
            },
        ];
        let a = v(&[(0, 1.0), (2, -1.0)]);
        let b = v(&[(1, 2.0), (2, 0.5)]);
        for k in kernels {
            assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-12, "{k:?}");
        }
    }

    #[test]
    fn names() {
        assert_eq!(Kernel::Linear.name(), "linear");
        assert_eq!(Kernel::default().name(), "rbf");
    }
}
