//! One-vs-all reduction of multi-label tagging to binary classification.
//!
//! "We simplify the multi-label classification problem into numerous
//! single-label classification problems […] for each c ∈ Y, we learn a function
//! f_c : X → {0, 1} indicating whether or not the tag is assigned to the
//! document. The binary classifiers are constructed using the one-against-all
//! method" (§2). This module implements that reduction generically over any
//! [`BinaryClassifier`].

use crate::batch::{BatchKernelScorer, TagWeightMatrix};
use crate::data::{MultiLabelDataset, TagId};
use crate::svm::{
    gram_matrix, BinaryClassifier, CsrLinearTrainer, KernelSvm, KernelSvmTrainer, LinearSvm,
    LinearSvmTrainer,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use textproc::SparseVector;

/// A scored tag suggestion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagPrediction {
    /// The suggested tag.
    pub tag: TagId,
    /// Raw decision value of the tag's binary classifier (higher = more confident).
    pub score: f64,
    /// Squashed confidence in (0, 1) (logistic of the score), used by the tag
    /// cloud font sizing and the confidence slider.
    pub confidence: f64,
}

/// Configuration of the one-vs-all reduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneVsAllTrainer {
    /// Decision threshold above which a tag is assigned.
    pub threshold: f64,
    /// If no score reaches the threshold, assign the top `min_tags` tags anyway
    /// (documents in the corpus always carry at least one tag).
    pub min_tags: usize,
    /// Tags with fewer positive training examples than this are skipped.
    pub min_positive: usize,
}

impl Default for OneVsAllTrainer {
    fn default() -> Self {
        Self {
            threshold: 0.0,
            min_tags: 1,
            min_positive: 1,
        }
    }
}

/// A trained set of per-tag binary classifiers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneVsAllModel<C> {
    classifiers: BTreeMap<TagId, C>,
    threshold: f64,
    min_tags: usize,
}

impl OneVsAllTrainer {
    /// Trains one binary classifier per tag using `train_fn`.
    ///
    /// `train_fn` receives the one-against-all view for each tag: the feature
    /// vectors and, for each, whether it is a positive example of the tag.
    /// The feature vectors are borrowed from the dataset **once** and shared
    /// by every per-tag problem (only the boolean label mask is per-tag), and
    /// the per-tag problems are trained in parallel — each invocation of
    /// `train_fn` is independent, so `train_fn` must be `Fn + Sync` and must
    /// not share mutable state (seed any RNG per call, as the SVM trainers
    /// do). The resulting model is identical to sequential training.
    pub fn train_with<C, F>(&self, data: &MultiLabelDataset, train_fn: F) -> OneVsAllModel<C>
    where
        C: BinaryClassifier + Send,
        F: Fn(TagId, &[SparseVector], &[bool]) -> C + Sync,
    {
        let xs = data.vectors();
        let tags = self.eligible_tags(data);
        let trained = parallel::par_map(&tags, |&tag| {
            let ys = data.label_mask(tag);
            train_fn(tag, xs, &ys)
        });
        self.assemble(tags, trained)
    }

    /// The tags eligible for a one-vs-all reduction over `data` (at least
    /// [`Self::min_positive`] positive examples), in ascending order.
    fn eligible_tags(&self, data: &MultiLabelDataset) -> Vec<TagId> {
        data.tag_counts()
            .into_iter()
            .filter(|&(_, count)| count >= self.min_positive)
            .map(|(tag, _)| tag)
            .collect()
    }

    /// Assembles a model from per-tag classifiers trained in tag order.
    fn assemble<C: BinaryClassifier>(&self, tags: Vec<TagId>, trained: Vec<C>) -> OneVsAllModel<C> {
        let classifiers: BTreeMap<TagId, C> = tags.into_iter().zip(trained).collect();
        OneVsAllModel {
            classifiers,
            threshold: self.threshold,
            min_tags: self.min_tags,
        }
    }

    /// Drives every per-tag linear problem off one shared CSR training
    /// context: `fit(ctx, mask, tag)` runs with the dataset-level state
    /// (matrix, DCD diagonal, shuffle orders, solver scratch) already hoisted
    /// out of the per-tag loop. Tag chunks fan out across cores, each chunk
    /// sequentially reusing its own context; the ordered reduction keeps the
    /// model identical to a sequential tag loop.
    fn train_linear_csr_with<F>(
        &self,
        data: &MultiLabelDataset,
        svm: &LinearSvmTrainer,
        fit: F,
    ) -> OneVsAllModel<LinearSvm>
    where
        F: Fn(&mut CsrLinearTrainer<'_>, &[bool], TagId) -> LinearSvm + Sync,
    {
        let tags = self.eligible_tags(data);
        if tags.is_empty() {
            return self.assemble(tags, Vec::new());
        }
        let csr = data.to_csr();
        // The DCD diagonal is label-independent: compute it once and share it
        // across workers (each worker's context only owns mutable scratch).
        let q = CsrLinearTrainer::dcd_diagonal(&csr);
        let chunk = tags
            .len()
            .div_ceil(parallel::effective_threads(tags.len()).max(1))
            .max(1);
        let trained: Vec<LinearSvm> = parallel::par_chunks(&tags, chunk, |_, chunk_tags| {
            let mut ctx = CsrLinearTrainer::with_diagonal(svm, &csr, &q);
            let mut mask = Vec::new();
            chunk_tags
                .iter()
                .map(|&tag| {
                    data.label_mask_into(tag, &mut mask);
                    fit(&mut ctx, &mask, tag)
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        self.assemble(tags, trained)
    }

    /// Convenience: one linear SVM per tag (the PACE base classifier).
    pub fn train_linear(
        &self,
        data: &MultiLabelDataset,
        svm: &LinearSvmTrainer,
    ) -> OneVsAllModel<LinearSvm> {
        self.train_with(data, |_, xs, ys| svm.train(xs, ys))
    }

    /// CSR-native variant of [`Self::train_linear`]: the dataset is
    /// materialized once as a row-major [`textproc::CsrMatrix`] and every
    /// per-tag fit runs through one shared [`CsrLinearTrainer`] context —
    /// shared DCD diagonal, shared shuffle orders, reused solver scratch, no
    /// per-tag corpus view of any kind. Produces a model **bit-identical** to
    /// [`Self::train_linear`] on the same inputs.
    pub fn train_linear_csr(
        &self,
        data: &MultiLabelDataset,
        svm: &LinearSvmTrainer,
    ) -> OneVsAllModel<LinearSvm> {
        self.train_linear_csr_with(data, svm, |ctx, mask, _| ctx.train(mask))
    }

    /// Convenience: one kernel SVM per tag (the CEMPaR base classifier).
    pub fn train_kernel(
        &self,
        data: &MultiLabelDataset,
        svm: &KernelSvmTrainer,
    ) -> OneVsAllModel<KernelSvm> {
        self.train_with(data, |_, xs, ys| svm.train(xs, ys))
    }

    /// Shared-Gram variant of [`Self::train_kernel`]: the kernel (Gram)
    /// matrix depends only on the data, not the labels, so it is computed
    /// **once** and shared by every per-tag SMO fit instead of being
    /// re-evaluated per tag (`O(T · n² · nnz)` → `O(n² · nnz + T · n²)`
    /// kernel work). Produces a model **bit-identical** to
    /// [`Self::train_kernel`] on the same inputs.
    pub fn train_kernel_shared(
        &self,
        data: &MultiLabelDataset,
        svm: &KernelSvmTrainer,
    ) -> OneVsAllModel<KernelSvm> {
        let tags = self.eligible_tags(data);
        if tags.is_empty() {
            return self.assemble(tags, Vec::new());
        }
        let xs = data.vectors();
        let gram = gram_matrix(svm.kernel, xs);
        let trained = parallel::par_map(&tags, |&tag| {
            let ys = data.label_mask(tag);
            svm.train_with_gram(xs, &ys, &gram)
        });
        self.assemble(tags, trained)
    }

    /// Warm-start one-vs-all refit for linear models: tags already known to
    /// `prev` are refit with [`LinearSvmTrainer::train_warm`] (a few SGD
    /// passes from the stored weights), tags new to the dataset are
    /// cold-trained. `data` is the peer's *full* (old + new) local dataset,
    /// so the refit sees every example — only the optimization is
    /// incremental, not the data.
    pub fn train_linear_warm(
        &self,
        data: &MultiLabelDataset,
        svm: &LinearSvmTrainer,
        prev: &OneVsAllModel<LinearSvm>,
    ) -> OneVsAllModel<LinearSvm> {
        self.train_with(data, |tag, xs, ys| match prev.classifier(tag) {
            Some(warm) => svm.train_warm(xs, ys, warm),
            None => svm.train(xs, ys),
        })
    }

    /// CSR-native variant of [`Self::train_linear_warm`]: warm refits and
    /// cold fits of new tags all run through one shared [`CsrLinearTrainer`]
    /// context per worker. Produces a model **bit-identical** to
    /// [`Self::train_linear_warm`] on the same inputs.
    pub fn train_linear_warm_csr(
        &self,
        data: &MultiLabelDataset,
        svm: &LinearSvmTrainer,
        prev: &OneVsAllModel<LinearSvm>,
    ) -> OneVsAllModel<LinearSvm> {
        self.train_linear_csr_with(data, svm, |ctx, mask, tag| match prev.classifier(tag) {
            Some(warm) => ctx.train_warm(mask, warm),
            None => ctx.train(mask),
        })
    }

    /// Warm-start one-vs-all refit for kernel models, the classic incremental
    /// SVM (retain the support vectors, add the new data, retrain): for each
    /// tag known to `prev`, the trainer runs on the previous classifier's
    /// support vectors pooled with the `new` examples — the same reduction the
    /// CEMPaR cascade applies when merging models — which costs
    /// `O((#SV + #new)²)` instead of `O(#full²)`. Tags without a previous
    /// classifier are cold-trained on the full dataset. `data` must contain
    /// the `new` examples (it provides the per-tag positive counts and the
    /// cold-training corpus).
    pub fn train_kernel_warm(
        &self,
        data: &MultiLabelDataset,
        new: &MultiLabelDataset,
        svm: &KernelSvmTrainer,
        prev: &OneVsAllModel<KernelSvm>,
    ) -> OneVsAllModel<KernelSvm> {
        let tags = self.eligible_tags(data);
        let trained = parallel::par_map(&tags, |&tag| {
            let Some(warm) = prev.classifier(tag) else {
                return svm.train(data.vectors(), &data.label_mask(tag));
            };
            // The pooled copies below are reference-count bumps: the SV and
            // new-example vectors share storage with their owners.
            let mut xs: Vec<SparseVector> = warm
                .support_vectors()
                .iter()
                .map(|sv| sv.vector.clone())
                .collect();
            let mut ys: Vec<bool> = warm.support_vectors().iter().map(|sv| sv.label).collect();
            xs.extend(new.vectors().iter().cloned());
            ys.extend(new.tag_sets().iter().map(|t| t.contains(&tag)));
            let has_pos = ys.iter().any(|&y| y);
            let has_neg = ys.iter().any(|&y| !y);
            if xs.is_empty() || !has_pos || !has_neg {
                // Nothing new to learn for this tag (or a degenerate pooled
                // set): the previous classifier stands.
                return warm.clone();
            }
            svm.train(&xs, &ys)
        });
        self.assemble(tags, trained)
    }
}

impl<C: BinaryClassifier> OneVsAllModel<C> {
    /// Builds a model directly from per-tag classifiers (used when per-tag
    /// models are merged across peers, e.g. by the CEMPaR cascade).
    pub fn from_classifiers(
        classifiers: BTreeMap<TagId, C>,
        threshold: f64,
        min_tags: usize,
    ) -> Self {
        Self {
            classifiers,
            threshold,
            min_tags,
        }
    }

    /// The tags this model can assign.
    pub fn tags(&self) -> impl Iterator<Item = TagId> + '_ {
        self.classifiers.keys().copied()
    }

    /// Number of per-tag classifiers.
    pub fn num_tags(&self) -> usize {
        self.classifiers.len()
    }

    /// The per-tag classifier, if the tag is known.
    pub fn classifier(&self, tag: TagId) -> Option<&C> {
        self.classifiers.get(&tag)
    }

    /// Iterates over `(tag, classifier)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &C)> {
        self.classifiers.iter().map(|(&t, c)| (t, c))
    }

    /// Scores every known tag for the document, sorted by descending score.
    pub fn scores(&self, x: &SparseVector) -> Vec<TagPrediction> {
        let mut out: Vec<TagPrediction> = self
            .classifiers
            .iter()
            .map(|(&tag, c)| {
                let score = c.decision(x);
                TagPrediction {
                    tag,
                    score,
                    confidence: logistic(score),
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Predicts the tag set: tags whose decision value reaches the threshold,
    /// or the top `min_tags` tags if none does.
    pub fn predict(&self, x: &SparseVector) -> BTreeSet<TagId> {
        let scores = self.scores(x);
        let above: BTreeSet<TagId> = scores
            .iter()
            .filter(|p| p.score >= self.threshold)
            .map(|p| p.tag)
            .collect();
        if !above.is_empty() {
            return above;
        }
        top_scored_tags(&scores, self.min_tags)
    }

    /// Total wire size of all per-tag classifiers.
    pub fn wire_size(&self) -> usize {
        self.classifiers
            .values()
            .map(BinaryClassifier::wire_size)
            .sum()
    }

    /// The decision threshold above which a tag is assigned.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Minimum number of tags assigned when nothing reaches the threshold.
    pub fn min_tags(&self) -> usize {
        self.min_tags
    }
}

impl OneVsAllModel<LinearSvm> {
    /// Packs the per-tag weight vectors into a shared CSR matrix whose
    /// batched [`TagWeightMatrix::scores`] / [`TagWeightMatrix::predict`] are
    /// identical to this model's scalar [`Self::scores`] / [`Self::predict`].
    pub fn weight_matrix(&self) -> TagWeightMatrix {
        TagWeightMatrix::from_classifiers(
            self.classifiers.iter().map(|(&t, c)| (t, c)),
            self.threshold,
            self.min_tags,
        )
    }
}

impl OneVsAllModel<KernelSvm> {
    /// Builds the batched kernel scorer sharing kernel-row evaluations across
    /// tags; its [`BatchKernelScorer::scores`] is identical to the scalar
    /// [`Self::scores`].
    pub fn kernel_scorer(&self) -> BatchKernelScorer {
        BatchKernelScorer::from_classifiers(self.classifiers.iter().map(|(&t, c)| (t, c)))
    }
}

/// Logistic squashing used to turn decision values into display confidences.
fn logistic(score: f64) -> f64 {
    1.0 / (1.0 + (-score).exp())
}

/// The `min_tags` fallback selection shared by every predict path (the
/// scalar and batched model predicts here, the protocol-level
/// `select_tags` / `select_tags_adaptive` in `p2pclassify`): the
/// best-*scored* tags win, whatever order the caller's score list is in,
/// with NaN scores excluded (a single NaN must neither be selected nor
/// poison the ordering of everything else — `total_cmp` gives a
/// deterministic total order where the old `partial_cmp(..).unwrap_or(Equal)`
/// comparator silently degraded to "whatever order the list already had").
/// The signs of exact zeros are normalized first so `-0.0`/`+0.0` ties keep
/// their stable input order, preserving scalar ↔ batched equivalence.
pub fn top_scored_tags(scores: &[TagPrediction], min_tags: usize) -> BTreeSet<TagId> {
    fn key(score: f64) -> f64 {
        if score == 0.0 {
            0.0
        } else {
            score
        }
    }
    let mut sorted: Vec<&TagPrediction> = scores.iter().filter(|p| !p.score.is_nan()).collect();
    sorted.sort_by(|a, b| key(b.score).total_cmp(&key(a.score)));
    sorted.into_iter().take(min_tags).map(|p| p.tag).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::MultiLabelExample;

    /// Builds a small synthetic multi-label corpus where tag 1 fires on feature
    /// 0, tag 2 on feature 1, and documents can carry both.
    fn toy_dataset() -> MultiLabelDataset {
        let mut ds = MultiLabelDataset::new();
        for i in 0..20 {
            let strength = 1.0 + (i % 3) as f64 * 0.1;
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(0, strength)]),
                [1],
            ));
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(1, strength)]),
                [2],
            ));
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(0, strength), (1, strength)]),
                [1, 2],
            ));
        }
        ds
    }

    #[test]
    fn learns_per_tag_classifiers() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_linear(&ds, &LinearSvmTrainer::default());
        assert_eq!(model.num_tags(), 2);
        assert_eq!(
            model.predict(&SparseVector::from_pairs([(0, 1.0)])),
            BTreeSet::from([1])
        );
        assert_eq!(
            model.predict(&SparseVector::from_pairs([(1, 1.0)])),
            BTreeSet::from([2])
        );
        assert_eq!(
            model.predict(&SparseVector::from_pairs([(0, 1.0), (1, 1.0)])),
            BTreeSet::from([1, 2])
        );
    }

    #[test]
    fn scores_are_sorted_and_confidences_bounded() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_linear(&ds, &LinearSvmTrainer::default());
        let scores = model.scores(&SparseVector::from_pairs([(0, 1.0)]));
        assert_eq!(scores.len(), 2);
        assert!(scores[0].score >= scores[1].score);
        for s in &scores {
            assert!(s.confidence > 0.0 && s.confidence < 1.0);
        }
        assert_eq!(scores[0].tag, 1);
    }

    #[test]
    fn min_tags_forces_at_least_one_tag() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_linear(&ds, &LinearSvmTrainer::default());
        // A document far from every positive region still receives one tag.
        let pred = model.predict(&SparseVector::from_pairs([(5, 1.0)]));
        assert_eq!(pred.len(), 1);
    }

    #[test]
    fn min_positive_skips_rare_tags() {
        let mut ds = toy_dataset();
        ds.push(MultiLabelExample::new(
            SparseVector::from_pairs([(3, 1.0)]),
            [99],
        ));
        let trainer = OneVsAllTrainer {
            min_positive: 2,
            ..Default::default()
        };
        let model = trainer.train_linear(&ds, &LinearSvmTrainer::default());
        assert!(model.classifier(99).is_none());
        assert_eq!(model.num_tags(), 2);
    }

    #[test]
    fn kernel_one_vs_all_also_works() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_kernel(&ds, &KernelSvmTrainer::default());
        assert_eq!(model.num_tags(), 2);
        let pred = model.predict(&SparseVector::from_pairs([(0, 1.0)]));
        assert!(pred.contains(&1));
    }

    #[test]
    fn linear_warm_refit_learns_a_new_tag_and_keeps_old_ones() {
        let mut ds = toy_dataset();
        let trainer = OneVsAllTrainer::default();
        let cold = trainer.train_linear(&ds, &LinearSvmTrainer::default());
        // A new tag 7 arrives, concentrated on feature 4.
        for i in 0..12 {
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(4, 1.0 + 0.05 * i as f64)]),
                [7],
            ));
        }
        let warm = trainer.train_linear_warm(&ds, &LinearSvmTrainer::default(), &cold);
        assert_eq!(warm.num_tags(), 3);
        assert!(warm
            .predict(&SparseVector::from_pairs([(4, 1.2)]))
            .contains(&7));
        assert!(warm
            .predict(&SparseVector::from_pairs([(0, 1.0)]))
            .contains(&1));
    }

    #[test]
    fn kernel_warm_refit_pools_support_vectors_with_new_examples() {
        let ds = toy_dataset();
        let trainer = OneVsAllTrainer::default();
        let cold = trainer.train_kernel(&ds, &KernelSvmTrainer::default());
        let mut full = ds.clone();
        let mut new = MultiLabelDataset::new();
        for i in 0..10 {
            let ex =
                MultiLabelExample::new(SparseVector::from_pairs([(5, 1.0 + 0.05 * i as f64)]), [9]);
            full.push(ex.clone());
            new.push(ex);
        }
        let warm = trainer.train_kernel_warm(&full, &new, &KernelSvmTrainer::default(), &cold);
        assert_eq!(warm.num_tags(), 3);
        assert!(warm
            .predict(&SparseVector::from_pairs([(5, 1.1)]))
            .contains(&9));
        assert!(warm
            .predict(&SparseVector::from_pairs([(1, 1.0)]))
            .contains(&2));
        // The warm refit never sees more examples per tag than SVs + new.
        let max_sv = cold
            .iter()
            .map(|(_, c)| c.num_support_vectors())
            .max()
            .unwrap();
        for (tag, clf) in warm.iter() {
            if cold.classifier(tag).is_some() {
                assert!(clf.num_support_vectors() <= max_sv + new.len());
            }
        }
    }

    /// Per-tag decision functions must agree bit for bit on a probe set.
    fn assert_models_bit_identical<C: BinaryClassifier>(
        a: &OneVsAllModel<C>,
        b: &OneVsAllModel<C>,
        probes: &[SparseVector],
    ) {
        assert_eq!(a.num_tags(), b.num_tags());
        for ((ta, ca), (tb, cb)) in a.iter().zip(b.iter()) {
            assert_eq!(ta, tb);
            for p in probes {
                assert_eq!(
                    ca.decision(p).to_bits(),
                    cb.decision(p).to_bits(),
                    "tag {ta}"
                );
            }
        }
    }

    fn probes() -> Vec<SparseVector> {
        vec![
            SparseVector::from_pairs([(0, 1.0)]),
            SparseVector::from_pairs([(1, 0.8), (4, 1.1)]),
            SparseVector::from_pairs([(0, -0.5), (1, 0.5), (4, 0.2)]),
            SparseVector::new(),
        ]
    }

    #[test]
    fn csr_one_vs_all_is_bit_identical_to_scalar() {
        let ds = toy_dataset();
        let trainer = OneVsAllTrainer::default();
        let svm = LinearSvmTrainer::default();
        let scalar = trainer.train_linear(&ds, &svm);
        let csr = trainer.train_linear_csr(&ds, &svm);
        assert_models_bit_identical(&scalar, &csr, &probes());
        for p in probes() {
            assert_eq!(scalar.scores(&p), csr.scores(&p));
            assert_eq!(scalar.predict(&p), csr.predict(&p));
        }
    }

    #[test]
    fn csr_warm_one_vs_all_is_bit_identical_to_scalar() {
        let mut ds = toy_dataset();
        let trainer = OneVsAllTrainer::default();
        let svm = LinearSvmTrainer::default();
        let cold = trainer.train_linear(&ds, &svm);
        // Enough new examples that the warm SGD path (not just the small-n
        // cold delegation) is exercised, including a brand-new tag.
        for i in 0..30 {
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(4, 1.0 + 0.02 * i as f64)]),
                [7],
            ));
        }
        let scalar = trainer.train_linear_warm(&ds, &svm, &cold);
        let csr = trainer.train_linear_warm_csr(&ds, &svm, &cold);
        assert_models_bit_identical(&scalar, &csr, &probes());
    }

    #[test]
    fn shared_gram_one_vs_all_is_bit_identical_to_scalar() {
        let ds = toy_dataset();
        let trainer = OneVsAllTrainer::default();
        let svm = KernelSvmTrainer::default();
        let scalar = trainer.train_kernel(&ds, &svm);
        let shared = trainer.train_kernel_shared(&ds, &svm);
        assert_models_bit_identical(&scalar, &shared, &probes());
        // Empty dataset degenerates to an empty model on both paths.
        let empty = MultiLabelDataset::new();
        assert_eq!(trainer.train_kernel_shared(&empty, &svm).num_tags(), 0);
        assert_eq!(
            OneVsAllTrainer::default()
                .train_linear_csr(&empty, &LinearSvmTrainer::default())
                .num_tags(),
            0
        );
    }

    #[test]
    fn min_tags_fallback_picks_best_scored_tag_not_lowest_id() {
        // Tag 9 (the highest id) is the right answer for feature 4; tags 1
        // and 2 know nothing about it. With every score below the threshold,
        // the fallback must pick the best-*scored* tag — a fallback walking
        // tag-id order would return tag 1.
        let classifiers = BTreeMap::from([
            (
                1,
                LinearSvm::from_weights(vec![0.0, 0.0, 0.0, 0.0, -2.0], 0.0),
            ),
            (
                2,
                LinearSvm::from_weights(vec![0.0, 0.0, 0.0, 0.0, -1.5], 0.0),
            ),
            (
                9,
                LinearSvm::from_weights(vec![0.0, 0.0, 0.0, 0.0, -0.2], 0.0),
            ),
        ]);
        let model = OneVsAllModel::from_classifiers(classifiers, 0.0, 1);
        let probe = SparseVector::from_pairs([(4, 1.0)]);
        assert_eq!(model.predict(&probe), BTreeSet::from([9]));
        // The batched path agrees.
        assert_eq!(model.weight_matrix().predict(&probe), BTreeSet::from([9]));
    }

    #[test]
    fn min_tags_fallback_is_nan_proof() {
        // A degenerate classifier producing NaN decisions must neither be
        // selected by the fallback nor poison the ordering of finite scores.
        let classifiers = BTreeMap::from([
            (1, LinearSvm::from_weights(vec![-3.0], 0.0)),
            (2, LinearSvm::from_weights(vec![f64::NAN], 0.0)),
            (7, LinearSvm::from_weights(vec![-0.5], 0.0)),
        ]);
        let model = OneVsAllModel::from_classifiers(classifiers, 0.0, 2);
        let probe = SparseVector::from_pairs([(0, 1.0)]);
        assert_eq!(model.predict(&probe), BTreeSet::from([1, 7]));
        assert_eq!(
            model.weight_matrix().predict(&probe),
            BTreeSet::from([1, 7])
        );
        // All-NaN scores select nothing rather than arbitrary tags.
        let all_nan = vec![
            TagPrediction {
                tag: 3,
                score: f64::NAN,
                confidence: 0.5,
            },
            TagPrediction {
                tag: 4,
                score: f64::NAN,
                confidence: 0.5,
            },
        ];
        assert!(top_scored_tags(&all_nan, 1).is_empty());
    }

    #[test]
    fn wire_size_sums_over_tags() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_linear(&ds, &LinearSvmTrainer::default());
        let per_tag: usize = model.iter().map(|(_, c)| c.wire_size()).sum();
        assert_eq!(model.wire_size(), per_tag);
        assert!(per_tag > 0);
    }

    #[test]
    fn logistic_is_monotone_and_bounded() {
        assert!(logistic(-10.0) < 0.01);
        assert!(logistic(10.0) > 0.99);
        assert!((logistic(0.0) - 0.5).abs() < 1e-12);
        assert!(logistic(1.0) > logistic(0.5));
    }
}
