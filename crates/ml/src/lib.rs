//! # ml — machine-learning substrate for P2PDocTagger
//!
//! P2PDocTagger poses automated tagging as classification (§2 of the paper):
//! a function `f : X → Y` mapping document vectors to tag sets is learned from
//! tagged examples. The multi-label problem is reduced to many one-vs-all
//! binary problems, each solved with an SVM. The two P2P classification
//! protocols the system plugs in are built from the primitives in this crate:
//!
//! * **CEMPaR** needs non-linear (kernel) SVMs and the *cascade SVM* merge of
//!   peer-local models ([`svm::KernelSvm`], [`cascade`]).
//! * **PACE** needs linear SVMs, k-means cluster centroids of the local data
//!   and a locality-sensitive-hashing index over model centroids
//!   ([`svm::LinearSvm`], [`kmeans`], [`lsh`]).
//!
//! Evaluation metrics for both single-label and multi-label predictions live in
//! [`metrics`]; the one-vs-all multi-label reduction lives in [`multilabel`].
//! The batched scoring engine — CSR-packed per-tag linear models and
//! shared-kernel-row scoring, bit-for-bit identical to the scalar per-tag
//! loops — lives in [`batch`]. The binary wire codec every propagated model,
//! example and prediction payload travels through (delta-varint indices,
//! optional weight quantization, guarded top-k pruning) lives in [`codec`].
//!
//! ```
//! use ml::prelude::*;
//! use textproc::SparseVector;
//!
//! // A linearly separable toy problem.
//! let xs = vec![
//!     SparseVector::from_pairs([(0u32, 1.0), (1, 1.0)]),
//!     SparseVector::from_pairs([(0u32, -1.0), (1, -1.0)]),
//! ];
//! let ys = vec![true, false];
//! let model = LinearSvmTrainer::default().train(&xs, &ys);
//! assert!(model.predict(&xs[0]));
//! assert!(!model.predict(&xs[1]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod cascade;
pub mod codec;
pub mod data;
pub mod kernel;
pub mod kmeans;
pub mod lsh;
pub mod metrics;
pub mod multilabel;
pub mod svm;

/// Common re-exports.
pub mod prelude {
    pub use crate::batch::{BatchKernelScorer, TagWeightMatrix};
    pub use crate::cascade::{CascadeConfig, CascadeSvm};
    pub use crate::data::{MultiLabelDataset, MultiLabelExample, TagId};
    pub use crate::kernel::Kernel;
    pub use crate::kmeans::{KMeans, KMeansConfig};
    pub use crate::lsh::{LshConfig, LshIndex};
    pub use crate::metrics::{BinaryMetrics, GroupedMetrics, HeadTailSplit, MultiLabelMetrics};
    pub use crate::multilabel::{OneVsAllModel, OneVsAllTrainer, TagPrediction};
    pub use crate::svm::{
        BinaryClassifier, KernelSvm, KernelSvmTrainer, LinearSvm, LinearSvmTrainer,
    };
}

pub use batch::{BatchKernelScorer, TagWeightMatrix};
pub use codec::{ByteReader, CodecError, WeightPrecision};
pub use data::{MultiLabelDataset, MultiLabelExample, TagId};
pub use kernel::Kernel;
pub use metrics::{BinaryMetrics, GroupedMetrics, HeadTailSplit, MultiLabelMetrics};
pub use multilabel::{OneVsAllModel, OneVsAllTrainer, TagPrediction};
pub use svm::{BinaryClassifier, KernelSvm, KernelSvmTrainer, LinearSvm, LinearSvmTrainer};
