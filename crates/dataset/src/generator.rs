//! Generative model for the synthetic delicious-like corpus.
//!
//! Each tag is a "topic" with its own characteristic vocabulary; a document's
//! text is a mixture of the vocabularies of its tags plus shared background
//! words. Crucially — as the paper stresses — the tag names themselves are
//! **never** placed in the document text, so tags cannot be produced by
//! indexing the documents' words; they must be *learned* from tagged examples.

use crate::corpus::Corpus;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Number of distinct tags (topics).
    pub num_tags: usize,
    /// Number of users (peers' owners).
    pub num_users: usize,
    /// Minimum documents per user (the demo filters users with ≥ 50).
    pub min_docs_per_user: usize,
    /// Maximum documents per user, exclusive (the demo filters users with < 200).
    pub max_docs_per_user: usize,
    /// Words drawn for each document body.
    pub words_per_doc: usize,
    /// Size of each tag's characteristic vocabulary.
    pub words_per_tag: usize,
    /// Size of the shared background vocabulary.
    pub background_vocab: usize,
    /// Probability that a word position is filled from the background vocabulary.
    pub background_ratio: f64,
    /// Maximum number of tags per document (at least 1 is always assigned).
    pub max_tags_per_doc: usize,
    /// Number of topics each user is interested in (interest locality).
    pub interests_per_user: usize,
    /// Probability that a document's tags are drawn from the *global* tag
    /// distribution instead of the user's interests — users stumble upon new
    /// topics they have not manually tagged before, which is exactly the case
    /// where collaborative knowledge from other peers is needed.
    pub exploration_ratio: f64,
    /// Zipf exponent of the global tag-popularity distribution.
    pub tag_zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self {
            num_tags: 20,
            num_users: 32,
            min_docs_per_user: 50,
            max_docs_per_user: 200,
            words_per_doc: 80,
            words_per_tag: 40,
            background_vocab: 400,
            background_ratio: 0.35,
            max_tags_per_doc: 3,
            interests_per_user: 6,
            exploration_ratio: 0.35,
            tag_zipf_exponent: 1.0,
            seed: 42,
        }
    }
}

impl CorpusSpec {
    /// A small spec for unit tests and doc examples (hundreds of documents).
    pub fn tiny() -> Self {
        Self {
            num_tags: 6,
            num_users: 8,
            min_docs_per_user: 12,
            max_docs_per_user: 20,
            words_per_doc: 40,
            words_per_tag: 25,
            background_vocab: 150,
            interests_per_user: 3,
            ..Self::default()
        }
    }

    /// A spec matching the scale the demo describes per peer (50–199 documents
    /// per user) with a medium number of users; used by the experiment harness.
    pub fn demo(num_users: usize, seed: u64) -> Self {
        Self {
            num_users,
            seed,
            ..Self::default()
        }
    }
}

/// Tag names used for readability in examples and the tag cloud; generated
/// names (`topic17`) are used beyond the list length.
const TAG_NAME_POOL: &[&str] = &[
    "programming",
    "rust",
    "database",
    "web",
    "design",
    "music",
    "travel",
    "photography",
    "science",
    "politics",
    "cooking",
    "sports",
    "machine-learning",
    "security",
    "networking",
    "art",
    "history",
    "finance",
    "health",
    "games",
    "linux",
    "education",
    "video",
    "howto",
    "reference",
    "opensource",
    "research",
    "blog",
    "news",
    "tools",
];

/// The synthetic-corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    spec: CorpusSpec,
}

impl CorpusGenerator {
    /// Creates a generator for the given spec.
    pub fn new(spec: CorpusSpec) -> Self {
        Self { spec }
    }

    /// The spec in use.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// Generates the corpus.
    pub fn generate(&self) -> Corpus {
        let spec = &self.spec;
        assert!(spec.num_tags > 0, "need at least one tag");
        assert!(spec.num_users > 0, "need at least one user");
        assert!(
            spec.max_docs_per_user > spec.min_docs_per_user,
            "max_docs_per_user must exceed min_docs_per_user"
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut corpus = Corpus::new();

        // Tag names and per-tag vocabularies. Word tokens are synthetic but
        // pronounceable-ish ("datab3x17") so the Porter stemmer and stop-word
        // filter see realistic-looking input without ever seeing the tag name.
        let tag_names: Vec<String> = (0..spec.num_tags)
            .map(|i| {
                TAG_NAME_POOL
                    .get(i)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("topic{i}"))
            })
            .collect();
        for name in &tag_names {
            corpus.intern_tag(name);
        }
        // Tokens must survive the preprocessing pipeline (which drops tokens
        // containing digits), so numeric indices are encoded as syllables.
        let tag_vocab: Vec<Vec<String>> = (0..spec.num_tags)
            .map(|t| {
                (0..spec.words_per_tag)
                    .map(|w| format!("{}{}", synth_stem(t, w), syllables(w)))
                    .collect()
            })
            .collect();
        let background: Vec<String> = (0..spec.background_vocab)
            .map(|w| format!("zq{}", syllables(w)))
            .collect();

        // Zipf weights over tags: tag popularity rank == tag index.
        let tag_weights: Vec<f64> = (0..spec.num_tags)
            .map(|i| 1.0 / ((i + 1) as f64).powf(spec.tag_zipf_exponent))
            .collect();

        for user in 0..spec.num_users {
            // Each user focuses on a few topics, sampled by global popularity.
            let mut interests = BTreeSet::new();
            let want = spec.interests_per_user.clamp(1, spec.num_tags);
            let mut guard = 0;
            while interests.len() < want && guard < 10_000 {
                interests.insert(sample_weighted(&tag_weights, &mut rng));
                guard += 1;
            }
            let interests: Vec<usize> = interests.into_iter().collect();
            let interest_weights: Vec<f64> = interests.iter().map(|&t| tag_weights[t]).collect();

            let num_docs = rng.gen_range(spec.min_docs_per_user..spec.max_docs_per_user);
            for _ in 0..num_docs {
                let num_doc_tags = rng.gen_range(1..=spec.max_tags_per_doc.max(1));
                // Exploration: some documents are about topics outside the
                // user's usual interests (newly discovered content).
                let explore = rng.gen_bool(spec.exploration_ratio.clamp(0.0, 1.0));
                let mut doc_tags = BTreeSet::new();
                let mut guard = 0;
                while doc_tags.len() < num_doc_tags && guard < 1_000 {
                    let t = if explore {
                        sample_weighted(&tag_weights, &mut rng)
                    } else {
                        interests[sample_weighted(&interest_weights, &mut rng)]
                    };
                    doc_tags.insert(t);
                    guard += 1;
                }
                let doc_tag_list: Vec<usize> = doc_tags.iter().copied().collect();
                let mut words = Vec::with_capacity(spec.words_per_doc);
                for _ in 0..spec.words_per_doc {
                    if rng.gen_bool(spec.background_ratio.clamp(0.0, 1.0)) {
                        words.push(background.choose(&mut rng).expect("non-empty").clone());
                    } else {
                        let &t = doc_tag_list.choose(&mut rng).expect("at least one tag");
                        // Zipf-ish within-topic word choice: low indices more common.
                        let v = &tag_vocab[t];
                        let idx = zipf_index(v.len(), 1.1, &mut rng);
                        words.push(v[idx].clone());
                    }
                }
                let text = words.join(" ");
                let tag_name_set: BTreeSet<String> =
                    doc_tag_list.iter().map(|&t| tag_names[t].clone()).collect();
                corpus.push_document(user, text, tag_name_set);
            }
        }
        corpus
    }
}

/// A deterministic consonant-vowel stem so synthetic words look like words.
fn synth_stem(tag: usize, word: usize) -> String {
    const CONS: &[char] = &[
        'b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'z',
    ];
    const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];
    let mut s = String::new();
    let mut x = (tag as u64 + 1)
        .wrapping_mul(2654435761)
        .wrapping_add(word as u64);
    for i in 0..4 {
        let set = if i % 2 == 0 { CONS } else { VOWELS };
        s.push(set[(x % set.len() as u64) as usize]);
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            >> 3;
    }
    s
}

/// Encodes a non-negative number as consonant-vowel syllables ("0" → "ba",
/// "27" → "firu", …) so synthetic word tokens contain no digits and are not
/// filtered out by the tokenizer.
fn syllables(mut n: usize) -> String {
    const CONS: &[char] = &['b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'p', 'r'];
    const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];
    let mut s = String::new();
    loop {
        let digit = n % 10;
        s.push(CONS[digit]);
        s.push(VOWELS[(n / 10) % 5]);
        n /= 10;
        if n == 0 {
            break;
        }
    }
    s
}

/// Samples an index proportionally to `weights`.
fn sample_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Samples an index in `[0, n)` with Zipf weight `1/(i+1)^s`.
fn zipf_index(n: usize, s: f64, rng: &mut StdRng) -> usize {
    // Small n: direct inverse-CDF sampling is fine.
    let total: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(s)).sum();
    let mut x = rng.gen_range(0.0..total);
    for i in 1..=n {
        let w = 1.0 / (i as f64).powf(s);
        if x < w {
            return i - 1;
        }
        x -= w;
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let spec = CorpusSpec::tiny();
        let corpus = CorpusGenerator::new(spec.clone()).generate();
        assert_eq!(corpus.num_users(), spec.num_users);
        assert_eq!(corpus.num_tags(), spec.num_tags);
        assert!(corpus.len() >= spec.num_users * spec.min_docs_per_user);
        assert!(corpus.len() < spec.num_users * spec.max_docs_per_user);
        for docs in corpus.documents_by_user() {
            assert!(docs.len() >= spec.min_docs_per_user);
            assert!(docs.len() < spec.max_docs_per_user);
        }
    }

    #[test]
    fn documents_have_tags_and_text() {
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        for d in corpus.documents() {
            assert!(!d.tags.is_empty());
            assert!(d.tags.len() <= CorpusSpec::tiny().max_tags_per_doc);
            assert!(d.text.split_whitespace().count() >= 10);
        }
        assert!(corpus.mean_tags_per_document() > 1.0);
    }

    #[test]
    fn tag_names_never_appear_in_text() {
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        for d in corpus.documents().iter().take(100) {
            for tag in &d.tags {
                assert!(!d.text.contains(tag), "tag {tag} leaked into document text");
            }
        }
    }

    #[test]
    fn tag_popularity_is_skewed() {
        let corpus = CorpusGenerator::new(CorpusSpec::default()).generate();
        let freq = corpus.tag_frequencies();
        let max = freq.values().copied().max().unwrap() as f64;
        let min = freq.values().copied().min().unwrap_or(0) as f64;
        assert!(max > 3.0 * min.max(1.0), "max {max} min {min}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let b = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let b = CorpusGenerator::new(CorpusSpec {
            seed: 999,
            ..CorpusSpec::tiny()
        })
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "max_docs_per_user")]
    fn invalid_spec_panics() {
        CorpusGenerator::new(CorpusSpec {
            min_docs_per_user: 10,
            max_docs_per_user: 10,
            ..CorpusSpec::tiny()
        })
        .generate();
    }
}
