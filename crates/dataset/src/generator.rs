//! Generative model for the synthetic delicious-like corpus.
//!
//! Each tag is a "topic" with its own characteristic vocabulary; a document's
//! text is a mixture of the vocabularies of its tags plus shared background
//! words. Crucially — as the paper stresses — the tag names themselves are
//! **never** placed in the document text, so tags cannot be produced by
//! indexing the documents' words; they must be *learned* from tagged examples.

use crate::corpus::Corpus;
use crate::error::{self, SpecError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// User interest *communities*: overlapping per-community tag pools with
/// occasional cross-community exploration.
///
/// Santos-Neto et al. measure interest-sharing clusters in real tagging
/// systems — users group around shared vocabularies, with limited overlap
/// between groups — and Cattuto et al. find the same community structure
/// emerging in tag co-occurrence networks. With communities enabled, users
/// are assigned round-robin to `num_communities` groups; each group owns an
/// interleaved share of the tag universe (so every community sees both head
/// and tail tags) extended by `tag_overlap` into its ring neighbor's share,
/// and a user's interests are drawn from their community's pool except for a
/// `cross_community_ratio` fraction of globally-sampled draws.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunitySpec {
    /// Number of interest communities; users are assigned round-robin, so
    /// membership always covers all users (and all communities, when there
    /// are at least as many users as communities).
    pub num_communities: usize,
    /// Fraction of the ring-neighbor community's tag pool shared into each
    /// community's pool, in `[0, 1]` (`0.0` = disjoint pools).
    pub tag_overlap: f64,
    /// Probability that an interest draw escapes the user's community pool
    /// and samples the global tag distribution instead, in `[0, 1]`.
    pub cross_community_ratio: f64,
}

impl Default for CommunitySpec {
    fn default() -> Self {
        Self {
            num_communities: 4,
            tag_overlap: 0.25,
            cross_community_ratio: 0.1,
        }
    }
}

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Number of distinct tags (topics).
    pub num_tags: usize,
    /// Number of users (peers' owners).
    pub num_users: usize,
    /// Minimum documents per user (the demo filters users with ≥ 50).
    pub min_docs_per_user: usize,
    /// Maximum documents per user, exclusive (the demo filters users with < 200).
    pub max_docs_per_user: usize,
    /// Words drawn for each document body.
    pub words_per_doc: usize,
    /// Size of each tag's characteristic vocabulary.
    pub words_per_tag: usize,
    /// Size of the shared background vocabulary.
    pub background_vocab: usize,
    /// Probability that a word position is filled from the background vocabulary.
    pub background_ratio: f64,
    /// Maximum number of tags per document (at least 1 is always assigned).
    pub max_tags_per_doc: usize,
    /// Number of topics each user is interested in (interest locality).
    pub interests_per_user: usize,
    /// Probability that a document's tags are drawn from the *global* tag
    /// distribution instead of the user's interests — users stumble upon new
    /// topics they have not manually tagged before, which is exactly the case
    /// where collaborative knowledge from other peers is needed.
    pub exploration_ratio: f64,
    /// Zipf exponent of the global tag-popularity distribution.
    pub tag_zipf_exponent: f64,
    /// User interest communities (`None` keeps the independent-users model
    /// and generates bit-identically to earlier versions of this crate).
    pub communities: Option<CommunitySpec>,
    /// Re-tagging/imitation strength in `[0, 1]` (`0.0` disables imitation
    /// and generates bit-identically to earlier versions of this crate).
    ///
    /// Golder & Huberman observe that a document's later taggings imitate the
    /// tag distribution already attached to it, so per-document tag sets
    /// *stabilize* instead of growing, and that corpus-wide tag popularity
    /// develops a power law through the same copying dynamic. With imitation
    /// enabled, each document receives a bounded stream of tagging events:
    /// every event after the first copies one of the document's earlier
    /// taggings with probability `imitation` (within-document stabilization),
    /// and fresh draws imitate the corpus-wide tagging history so far with
    /// probability `imitation` (preferential attachment) before falling back
    /// to the interest/exploration draw. Higher imitation therefore produces
    /// both fewer distinct tags per document and heavier global skew.
    pub imitation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self {
            num_tags: 20,
            num_users: 32,
            min_docs_per_user: 50,
            max_docs_per_user: 200,
            words_per_doc: 80,
            words_per_tag: 40,
            background_vocab: 400,
            background_ratio: 0.35,
            max_tags_per_doc: 3,
            interests_per_user: 6,
            exploration_ratio: 0.35,
            tag_zipf_exponent: 1.0,
            communities: None,
            imitation: 0.0,
            seed: 42,
        }
    }
}

impl CorpusSpec {
    /// A small spec for unit tests and doc examples (hundreds of documents).
    pub fn tiny() -> Self {
        Self {
            num_tags: 6,
            num_users: 8,
            min_docs_per_user: 12,
            max_docs_per_user: 20,
            words_per_doc: 40,
            words_per_tag: 25,
            background_vocab: 150,
            interests_per_user: 3,
            ..Self::default()
        }
    }

    /// A spec matching the scale the demo describes per peer (50–199 documents
    /// per user) with a medium number of users; used by the experiment harness.
    pub fn demo(num_users: usize, seed: u64) -> Self {
        Self {
            num_users,
            seed,
            ..Self::default()
        }
    }

    /// Validates every field, returning a typed error naming the first
    /// offending field instead of clamping silently or panicking deep inside
    /// generation.
    pub fn validate(&self) -> Result<(), SpecError> {
        error::nonzero("num_tags", self.num_tags)?;
        error::nonzero("num_users", self.num_users)?;
        if self.min_docs_per_user >= self.max_docs_per_user {
            return Err(SpecError::DocsPerUserRange {
                min: self.min_docs_per_user,
                max: self.max_docs_per_user,
            });
        }
        error::nonzero("words_per_doc", self.words_per_doc)?;
        error::nonzero("words_per_tag", self.words_per_tag)?;
        error::nonzero("background_vocab", self.background_vocab)?;
        error::nonzero("max_tags_per_doc", self.max_tags_per_doc)?;
        error::nonzero("interests_per_user", self.interests_per_user)?;
        error::unit_interval("background_ratio", self.background_ratio)?;
        error::unit_interval("exploration_ratio", self.exploration_ratio)?;
        error::unit_interval("imitation", self.imitation)?;
        error::positive("tag_zipf_exponent", self.tag_zipf_exponent)?;
        if let Some(c) = &self.communities {
            error::nonzero("num_communities", c.num_communities)?;
            error::unit_interval("tag_overlap", c.tag_overlap)?;
            error::unit_interval("cross_community_ratio", c.cross_community_ratio)?;
        }
        Ok(())
    }
}

/// Tag names used for readability in examples and the tag cloud; generated
/// names (`topic17`) are used beyond the list length.
const TAG_NAME_POOL: &[&str] = &[
    "programming",
    "rust",
    "database",
    "web",
    "design",
    "music",
    "travel",
    "photography",
    "science",
    "politics",
    "cooking",
    "sports",
    "machine-learning",
    "security",
    "networking",
    "art",
    "history",
    "finance",
    "health",
    "games",
    "linux",
    "education",
    "video",
    "howto",
    "reference",
    "opensource",
    "research",
    "blog",
    "news",
    "tools",
];

/// The synthetic-corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    spec: CorpusSpec,
}

impl CorpusGenerator {
    /// Creates a generator for the given spec, panicking (with the
    /// validation error's message) if the spec is invalid. Use
    /// [`Self::try_new`] to handle invalid specs gracefully.
    pub fn new(spec: CorpusSpec) -> Self {
        Self::try_new(spec).unwrap_or_else(|e| panic!("invalid CorpusSpec: {e}"))
    }

    /// Creates a generator for the given spec, rejecting invalid specs with a
    /// typed [`SpecError`].
    pub fn try_new(spec: CorpusSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(Self { spec })
    }

    /// The spec in use.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// The community index of every user (round-robin over the configured
    /// community count, capped at the user count so no community index is
    /// unreachable), or `None` when communities are disabled. Deterministic:
    /// derived from the spec without consuming randomness.
    pub fn community_assignments(&self) -> Option<Vec<usize>> {
        let c = self.spec.communities.as_ref()?;
        let k = c.num_communities.min(self.spec.num_users).max(1);
        Some((0..self.spec.num_users).map(|u| u % k).collect())
    }

    /// Each community's tag pool (sorted tag ids), or `None` when communities
    /// are disabled. Community `c` owns the interleaved share `t % k == c` of
    /// the tag universe — so every community sees both head and tail tags —
    /// extended by `tag_overlap` of its ring neighbor's most popular tags.
    /// The pools jointly cover the whole tag universe.
    pub fn community_tag_pools(&self) -> Option<Vec<Vec<usize>>> {
        let c = self.spec.communities.as_ref()?;
        let k = c.num_communities.min(self.spec.num_users).max(1);
        let own: Vec<Vec<usize>> = (0..k)
            .map(|i| (i..self.spec.num_tags).step_by(k).collect())
            .collect();
        let pools = (0..k)
            .map(|i| {
                let mut pool = own[i].clone();
                let neighbor = &own[(i + 1) % k];
                let shared = (c.tag_overlap * neighbor.len() as f64).ceil() as usize;
                pool.extend_from_slice(&neighbor[..shared.min(neighbor.len())]);
                pool.sort_unstable();
                pool.dedup();
                pool
            })
            .collect();
        Some(pools)
    }

    /// Generates the corpus.
    pub fn generate(&self) -> Corpus {
        let spec = &self.spec;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut corpus = Corpus::new();

        // Tag names and per-tag vocabularies. Word tokens are synthetic but
        // pronounceable-ish ("datab3x17") so the Porter stemmer and stop-word
        // filter see realistic-looking input without ever seeing the tag name.
        let tag_names: Vec<String> = (0..spec.num_tags)
            .map(|i| {
                TAG_NAME_POOL
                    .get(i)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("topic{i}"))
            })
            .collect();
        for name in &tag_names {
            corpus.intern_tag(name);
        }
        // Tokens must survive the preprocessing pipeline (which drops tokens
        // containing digits), so numeric indices are encoded as syllables.
        let tag_vocab: Vec<Vec<String>> = (0..spec.num_tags)
            .map(|t| {
                (0..spec.words_per_tag)
                    .map(|w| format!("{}{}", synth_stem(t, w), syllables(w)))
                    .collect()
            })
            .collect();
        let background: Vec<String> = (0..spec.background_vocab)
            .map(|w| format!("zq{}", syllables(w)))
            .collect();

        // Zipf weights over tags: tag popularity rank == tag index.
        let tag_weights: Vec<f64> = (0..spec.num_tags)
            .map(|i| 1.0 / ((i + 1) as f64).powf(spec.tag_zipf_exponent))
            .collect();

        // Community structure (None = independent users, the legacy model).
        // Both paths must consume identical randomness when communities are
        // disabled so legacy seeds keep generating bit-identical corpora.
        let assignments = self.community_assignments();
        let pools = self.community_tag_pools();
        let pool_weights: Option<Vec<Vec<f64>>> = pools.as_ref().map(|pools| {
            pools
                .iter()
                .map(|pool| pool.iter().map(|&t| tag_weights[t]).collect())
                .collect()
        });
        let cross_ratio = spec
            .communities
            .as_ref()
            .map_or(0.0, |c| c.cross_community_ratio);

        // Corpus-wide tagging history for imitation: a Polya urn seeded with
        // the Zipf prior (every tag stays reachable, and reinforcement
        // amplifies the head instead of washing it out toward uniform).
        let imitating = spec.imitation > 0.0;
        let mut urn: Vec<f64> = tag_weights.clone();

        for user in 0..spec.num_users {
            // Each user focuses on a few topics, sampled by global popularity
            // within their community's tag pool (or the whole universe).
            let community = assignments.as_ref().map(|a| a[user]);
            let (pool, pool_w): (&[usize], &[f64]) = match (&pools, &pool_weights, community) {
                (Some(p), Some(w), Some(c)) => (&p[c], &w[c]),
                _ => (&[], &[]),
            };
            let mut interests = BTreeSet::new();
            let universe = if pool.is_empty() {
                spec.num_tags
            } else {
                pool.len()
            };
            let want = spec.interests_per_user.clamp(1, universe);
            let mut guard = 0;
            while interests.len() < want && guard < 10_000 {
                let t = if pool.is_empty() {
                    sample_weighted(&tag_weights, &mut rng)
                } else if cross_ratio > 0.0 && rng.gen_bool(cross_ratio) {
                    // Cross-community exploration: a few interests come from
                    // the global distribution, not the community pool.
                    sample_weighted(&tag_weights, &mut rng)
                } else {
                    pool[sample_weighted(pool_w, &mut rng)]
                };
                interests.insert(t);
                guard += 1;
            }
            let interests: Vec<usize> = interests.into_iter().collect();
            let interest_weights: Vec<f64> = interests.iter().map(|&t| tag_weights[t]).collect();

            let num_docs = rng.gen_range(spec.min_docs_per_user..spec.max_docs_per_user);
            for _ in 0..num_docs {
                let num_doc_tags = rng.gen_range(1..=spec.max_tags_per_doc.max(1));
                // Exploration: some documents are about topics outside the
                // user's usual interests (newly discovered content).
                let explore = rng.gen_bool(spec.exploration_ratio);
                let fresh_draw = |rng: &mut StdRng| {
                    if explore {
                        sample_weighted(&tag_weights, rng)
                    } else {
                        interests[sample_weighted(&interest_weights, rng)]
                    }
                };
                let mut doc_tags = BTreeSet::new();
                if imitating {
                    // A bounded stream of tagging events: later events copy
                    // the document's earlier taggings with probability
                    // `imitation` (so the distinct set stabilizes — G&H), and
                    // fresh draws imitate the corpus-wide urn with the same
                    // probability (preferential attachment) before falling
                    // back to the interest/exploration draw.
                    let mut events: Vec<usize> = Vec::new();
                    for _ in 0..num_doc_tags * 2 + 2 {
                        let t = if !events.is_empty() && rng.gen_bool(spec.imitation) {
                            *events.choose(&mut rng).expect("non-empty")
                        } else if rng.gen_bool(spec.imitation) {
                            sample_weighted(&urn, &mut rng)
                        } else {
                            fresh_draw(&mut rng)
                        };
                        events.push(t);
                        if doc_tags.len() < num_doc_tags || doc_tags.contains(&t) {
                            doc_tags.insert(t);
                        }
                    }
                    for &t in &doc_tags {
                        urn[t] += 1.0;
                    }
                } else {
                    let mut guard = 0;
                    while doc_tags.len() < num_doc_tags && guard < 1_000 {
                        doc_tags.insert(fresh_draw(&mut rng));
                        guard += 1;
                    }
                }
                let doc_tag_list: Vec<usize> = doc_tags.iter().copied().collect();
                let mut words = Vec::with_capacity(spec.words_per_doc);
                for _ in 0..spec.words_per_doc {
                    if rng.gen_bool(spec.background_ratio) {
                        words.push(background.choose(&mut rng).expect("non-empty").clone());
                    } else {
                        let &t = doc_tag_list.choose(&mut rng).expect("at least one tag");
                        // Zipf-ish within-topic word choice: low indices more common.
                        let v = &tag_vocab[t];
                        let idx = zipf_index(v.len(), 1.1, &mut rng);
                        words.push(v[idx].clone());
                    }
                }
                let text = words.join(" ");
                let tag_name_set: BTreeSet<String> =
                    doc_tag_list.iter().map(|&t| tag_names[t].clone()).collect();
                corpus.push_document(user, text, tag_name_set);
            }
        }
        corpus
    }
}

/// A deterministic consonant-vowel stem so synthetic words look like words.
fn synth_stem(tag: usize, word: usize) -> String {
    const CONS: &[char] = &[
        'b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'z',
    ];
    const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];
    let mut s = String::new();
    let mut x = (tag as u64 + 1)
        .wrapping_mul(2654435761)
        .wrapping_add(word as u64);
    for i in 0..4 {
        let set = if i % 2 == 0 { CONS } else { VOWELS };
        s.push(set[(x % set.len() as u64) as usize]);
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            >> 3;
    }
    s
}

/// Encodes a non-negative number as consonant-vowel syllables ("0" → "ba",
/// "27" → "firu", …) so synthetic word tokens contain no digits and are not
/// filtered out by the tokenizer.
fn syllables(mut n: usize) -> String {
    const CONS: &[char] = &['b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'p', 'r'];
    const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];
    let mut s = String::new();
    loop {
        let digit = n % 10;
        s.push(CONS[digit]);
        s.push(VOWELS[(n / 10) % 5]);
        n /= 10;
        if n == 0 {
            break;
        }
    }
    s
}

/// Samples an index proportionally to `weights`.
fn sample_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Samples an index in `[0, n)` with Zipf weight `1/(i+1)^s`.
fn zipf_index(n: usize, s: f64, rng: &mut StdRng) -> usize {
    // Small n: direct inverse-CDF sampling is fine.
    let total: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(s)).sum();
    let mut x = rng.gen_range(0.0..total);
    for i in 1..=n {
        let w = 1.0 / (i as f64).powf(s);
        if x < w {
            return i - 1;
        }
        x -= w;
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let spec = CorpusSpec::tiny();
        let corpus = CorpusGenerator::new(spec.clone()).generate();
        assert_eq!(corpus.num_users(), spec.num_users);
        assert_eq!(corpus.num_tags(), spec.num_tags);
        assert!(corpus.len() >= spec.num_users * spec.min_docs_per_user);
        assert!(corpus.len() < spec.num_users * spec.max_docs_per_user);
        for docs in corpus.documents_by_user() {
            assert!(docs.len() >= spec.min_docs_per_user);
            assert!(docs.len() < spec.max_docs_per_user);
        }
    }

    #[test]
    fn documents_have_tags_and_text() {
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        for d in corpus.documents() {
            assert!(!d.tags.is_empty());
            assert!(d.tags.len() <= CorpusSpec::tiny().max_tags_per_doc);
            assert!(d.text.split_whitespace().count() >= 10);
        }
        assert!(corpus.mean_tags_per_document() > 1.0);
    }

    #[test]
    fn tag_names_never_appear_in_text() {
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        for d in corpus.documents().iter().take(100) {
            for tag in &d.tags {
                assert!(!d.text.contains(tag), "tag {tag} leaked into document text");
            }
        }
    }

    #[test]
    fn tag_popularity_is_skewed() {
        let corpus = CorpusGenerator::new(CorpusSpec::default()).generate();
        let freq = corpus.tag_frequencies();
        let max = freq.values().copied().max().unwrap() as f64;
        let min = freq.values().copied().min().unwrap_or(0) as f64;
        assert!(max > 3.0 * min.max(1.0), "max {max} min {min}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let b = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let b = CorpusGenerator::new(CorpusSpec {
            seed: 999,
            ..CorpusSpec::tiny()
        })
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "max_docs_per_user")]
    fn invalid_spec_panics() {
        CorpusGenerator::new(CorpusSpec {
            min_docs_per_user: 10,
            max_docs_per_user: 10,
            ..CorpusSpec::tiny()
        })
        .generate();
    }

    #[test]
    fn validation_rejects_each_bad_field_with_a_typed_error() {
        use crate::error::SpecError;
        let base = CorpusSpec::tiny();
        assert_eq!(base.validate(), Ok(()));
        let cases: Vec<(CorpusSpec, SpecError)> = vec![
            (
                CorpusSpec {
                    min_docs_per_user: 10,
                    max_docs_per_user: 10,
                    ..base.clone()
                },
                SpecError::DocsPerUserRange { min: 10, max: 10 },
            ),
            (
                CorpusSpec {
                    num_tags: 0,
                    ..base.clone()
                },
                SpecError::ZeroCount { field: "num_tags" },
            ),
            (
                CorpusSpec {
                    tag_zipf_exponent: 0.0,
                    ..base.clone()
                },
                SpecError::NonPositive {
                    field: "tag_zipf_exponent",
                    value: 0.0,
                },
            ),
            (
                CorpusSpec {
                    imitation: 1.5,
                    ..base.clone()
                },
                SpecError::UnitInterval {
                    field: "imitation",
                    value: 1.5,
                },
            ),
            (
                CorpusSpec {
                    exploration_ratio: -0.1,
                    ..base.clone()
                },
                SpecError::UnitInterval {
                    field: "exploration_ratio",
                    value: -0.1,
                },
            ),
            (
                CorpusSpec {
                    communities: Some(CommunitySpec {
                        num_communities: 0,
                        ..CommunitySpec::default()
                    }),
                    ..base.clone()
                },
                SpecError::ZeroCount {
                    field: "num_communities",
                },
            ),
            (
                CorpusSpec {
                    communities: Some(CommunitySpec {
                        tag_overlap: 2.0,
                        ..CommunitySpec::default()
                    }),
                    ..base.clone()
                },
                SpecError::UnitInterval {
                    field: "tag_overlap",
                    value: 2.0,
                },
            ),
        ];
        for (spec, expected) in cases {
            assert_eq!(spec.validate(), Err(expected.clone()));
            assert_eq!(CorpusGenerator::try_new(spec).err(), Some(expected));
        }
    }

    fn community_spec() -> CorpusSpec {
        CorpusSpec {
            communities: Some(CommunitySpec {
                num_communities: 3,
                tag_overlap: 0.0,
                cross_community_ratio: 0.0,
            }),
            exploration_ratio: 0.0,
            ..CorpusSpec::tiny()
        }
    }

    #[test]
    fn community_assignments_cover_all_users_and_pools_cover_all_tags() {
        let spec = community_spec();
        let generator = CorpusGenerator::new(spec.clone());
        let assignments = generator.community_assignments().unwrap();
        assert_eq!(assignments.len(), spec.num_users);
        let k = 3;
        for c in 0..k {
            assert!(assignments.contains(&c), "community {c} empty");
        }
        let pools = generator.community_tag_pools().unwrap();
        let mut union: BTreeSet<usize> = BTreeSet::new();
        for pool in &pools {
            assert!(!pool.is_empty());
            union.extend(pool.iter().copied());
        }
        assert_eq!(union.len(), spec.num_tags, "pools must cover the universe");
    }

    #[test]
    fn disjoint_communities_confine_each_users_tags_to_their_pool() {
        // With no overlap, no cross-community draws and no exploration, every
        // document's tags must come from its owner's community pool.
        let generator = CorpusGenerator::new(community_spec());
        let corpus = generator.generate();
        let assignments = generator.community_assignments().unwrap();
        let pools = generator.community_tag_pools().unwrap();
        for d in corpus.documents() {
            let pool: BTreeSet<u32> = pools[assignments[d.user]]
                .iter()
                .map(|&t| t as u32)
                .collect();
            for id in corpus.tag_ids_of(d.id) {
                assert!(
                    pool.contains(&id),
                    "user {} (community {}) tagged outside their pool: tag {id}",
                    d.user,
                    assignments[d.user]
                );
            }
        }
    }

    #[test]
    fn tag_overlap_lets_neighboring_communities_share_tags() {
        let spec = CorpusSpec {
            communities: Some(CommunitySpec {
                num_communities: 3,
                tag_overlap: 0.5,
                cross_community_ratio: 0.0,
            }),
            ..CorpusSpec::tiny()
        };
        let pools = CorpusGenerator::new(spec).community_tag_pools().unwrap();
        for (i, pool) in pools.iter().enumerate() {
            let neighbor: BTreeSet<usize> = pools[(i + 1) % pools.len()].iter().copied().collect();
            let shared = pool.iter().filter(|t| neighbor.contains(t)).count();
            assert!(shared > 0, "community {i} shares nothing with its neighbor");
        }
    }

    #[test]
    fn imitation_stabilizes_per_document_tag_sets() {
        let base = CorpusSpec {
            max_tags_per_doc: 4,
            ..CorpusSpec::tiny()
        };
        let plain = CorpusGenerator::new(base.clone()).generate();
        let imitated = CorpusGenerator::new(CorpusSpec {
            imitation: 0.9,
            ..base
        })
        .generate();
        assert!(
            imitated.mean_tags_per_document() < plain.mean_tags_per_document(),
            "imitation {} vs plain {}",
            imitated.mean_tags_per_document(),
            plain.mean_tags_per_document()
        );
        for d in imitated.documents() {
            assert!(!d.tags.is_empty());
        }
    }

    #[test]
    fn imitation_skews_global_tag_popularity() {
        // Preferential attachment: the top tag's share of all taggings grows
        // with imitation strength.
        let top_share = |imitation: f64| {
            let corpus = CorpusGenerator::new(CorpusSpec {
                imitation,
                ..CorpusSpec::tiny()
            })
            .generate();
            let freq = corpus.tag_frequencies();
            let total: usize = freq.values().sum();
            let max = freq.values().copied().max().unwrap_or(0);
            max as f64 / total.max(1) as f64
        };
        assert!(
            top_share(0.9) > top_share(0.0),
            "imitation 0.9 share {} vs baseline {}",
            top_share(0.9),
            top_share(0.0)
        );
    }

    #[test]
    fn zero_imitation_and_no_communities_reproduce_the_legacy_stream() {
        // The benign scenario must be bit-identical to the pre-scenario
        // generator: the new knobs may not consume randomness when disabled.
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let explicit = CorpusGenerator::new(CorpusSpec {
            communities: None,
            imitation: 0.0,
            ..CorpusSpec::tiny()
        })
        .generate();
        assert_eq!(corpus, explicit);
    }
}
