//! Bridging the raw corpus to the learning layer.
//!
//! Runs the full preprocessing pipeline (Figure 1: tokenize → stop words →
//! Porter stemming → TF-IDF sparse vectors) over a corpus and packages the
//! result as [`ml::MultiLabelExample`]s keyed by document id, ready to be
//! distributed over peers.

use crate::corpus::{Corpus, DocumentId};
use crate::split::TrainTestSplit;
use ml::{MultiLabelDataset, MultiLabelExample};
use std::collections::BTreeSet;
use textproc::{PreprocessPipeline, SparseVector, Weighting};

/// A corpus whose documents have been vectorized with a shared vocabulary.
#[derive(Debug, Clone)]
pub struct VectorizedCorpus {
    vectors: Vec<SparseVector>,
    tags: Vec<BTreeSet<u32>>,
    pipeline: PreprocessPipeline,
}

impl VectorizedCorpus {
    /// Vectorizes every document of `corpus` with a TF-IDF pipeline fitted on
    /// the whole corpus (the shared lexicon all peers agree on).
    pub fn build(corpus: &Corpus) -> Self {
        Self::build_with_weighting(corpus, Weighting::TfIdf)
    }

    /// Vectorizes with an explicit weighting scheme.
    pub fn build_with_weighting(corpus: &Corpus, weighting: Weighting) -> Self {
        let mut pipeline = PreprocessPipeline::builder().weighting(weighting).build();
        let texts: Vec<&str> = corpus.documents().iter().map(|d| d.text.as_str()).collect();
        let vectors = pipeline.fit_transform(texts.iter().copied());
        let tags = corpus
            .documents()
            .iter()
            .map(|d| corpus.tag_ids_of(d.id))
            .collect();
        Self {
            vectors,
            tags,
            pipeline,
        }
    }

    /// The fitted preprocessing pipeline (shared lexicon).
    pub fn pipeline(&self) -> &PreprocessPipeline {
        &self.pipeline
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Size of the fitted lexicon.
    pub fn lexicon_size(&self) -> usize {
        self.pipeline.lexicon_size()
    }

    /// The sparse vector of a document.
    pub fn vector(&self, doc: DocumentId) -> &SparseVector {
        &self.vectors[doc]
    }

    /// The tag-id set of a document.
    pub fn tags(&self, doc: DocumentId) -> &BTreeSet<u32> {
        &self.tags[doc]
    }

    /// A labeled example for a document. The example's vector **shares
    /// storage** with this corpus (`SparseVector` clones are reference-count
    /// bumps), so building per-peer datasets from a vectorized corpus — the
    /// doctagger ingest/learn path — never copies the underlying entries.
    pub fn example(&self, doc: DocumentId) -> MultiLabelExample {
        MultiLabelExample::new(self.vectors[doc].clone(), self.tags[doc].iter().copied())
    }

    /// A labeled dataset over the given documents (e.g. a peer's local
    /// training data or the train side of a split).
    pub fn dataset_of(&self, docs: &[DocumentId]) -> MultiLabelDataset {
        docs.iter().map(|&d| self.example(d)).collect()
    }

    /// Convenience: the train and test datasets of a split.
    pub fn split_datasets(&self, split: &TrainTestSplit) -> (MultiLabelDataset, MultiLabelDataset) {
        (self.dataset_of(&split.train), self.dataset_of(&split.test))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusGenerator, CorpusSpec};

    fn vectorized() -> (Corpus, VectorizedCorpus) {
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let v = VectorizedCorpus::build(&corpus);
        (corpus, v)
    }

    #[test]
    fn every_document_gets_a_nonempty_vector() {
        let (corpus, v) = vectorized();
        assert_eq!(v.len(), corpus.len());
        assert!(v.lexicon_size() > 50);
        for d in 0..v.len() {
            assert!(v.vector(d).nnz() > 0, "document {d} has an empty vector");
            assert!(!v.tags(d).is_empty());
        }
    }

    #[test]
    fn examples_carry_the_right_tags() {
        let (corpus, v) = vectorized();
        for d in corpus.documents().iter().take(20) {
            let ex = v.example(d.id);
            assert_eq!(ex.tags, corpus.tag_ids_of(d.id));
        }
    }

    #[test]
    fn examples_share_vector_storage_with_the_corpus() {
        let (_, v) = vectorized();
        for d in 0..v.len().min(10) {
            assert!(
                v.example(d).vector.shares_storage_with(v.vector(d)),
                "example {d} copied its vector instead of sharing it"
            );
        }
    }

    #[test]
    fn split_datasets_partition_the_corpus() {
        let (corpus, v) = vectorized();
        let split = TrainTestSplit::demo_protocol(&corpus, 5);
        let (train, test) = v.split_datasets(&split);
        assert_eq!(train.len() + test.len(), corpus.len());
        assert!(train.len() < test.len());
    }

    #[test]
    fn documents_with_same_tag_are_more_similar() {
        // The generative model must make tags learnable: same-tag documents
        // should on average be closer (cosine) than different-tag documents.
        let (corpus, v) = vectorized();
        let docs = corpus.documents();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in (0..docs.len()).step_by(7) {
            for j in (i + 1..docs.len()).step_by(11) {
                let sim = v.vector(i).cosine(v.vector(j));
                if docs[i].tags.intersection(&docs[j].tags).next().is_some() {
                    same.push(sim);
                } else {
                    diff.push(sim);
                }
            }
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        assert!(
            mean(&same) > mean(&diff) + 0.05,
            "same {} diff {}",
            mean(&same),
            mean(&diff)
        );
    }
}
