//! Train/test splitting following the demo protocol.
//!
//! "20 percent of the documents with tags are used for training the automated
//! tagger, while tags of the remaining 80 percent documents are removed to be
//! tagged by P2PDocTagger" (§3). The split is stratified per user so that every
//! peer keeps roughly the same training fraction — each peer contributes "a
//! small number of tagged documents".

use crate::corpus::{Corpus, DocumentId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A train/test partition of a corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainTestSplit {
    /// Documents whose tags remain visible (manually tagged by users).
    pub train: Vec<DocumentId>,
    /// Documents whose tags are hidden and must be predicted.
    pub test: Vec<DocumentId>,
}

impl TrainTestSplit {
    /// Splits `corpus` with `train_fraction` of each user's documents used for
    /// training (at least one per user when the user has any documents).
    ///
    /// # Panics
    /// Panics unless `0.0 < train_fraction < 1.0`.
    pub fn stratified_by_user(corpus: &Corpus, train_fraction: f64, seed: u64) -> Self {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for mut docs in corpus.documents_by_user() {
            if docs.is_empty() {
                continue;
            }
            docs.shuffle(&mut rng);
            let n_train = ((docs.len() as f64 * train_fraction).round() as usize)
                .clamp(1, docs.len().saturating_sub(1).max(1));
            for (i, d) in docs.into_iter().enumerate() {
                if i < n_train {
                    train.push(d);
                } else {
                    test.push(d);
                }
            }
        }
        train.sort_unstable();
        test.sort_unstable();
        Self { train, test }
    }

    /// The demo protocol: 20 % training, 80 % testing.
    pub fn demo_protocol(corpus: &Corpus, seed: u64) -> Self {
        Self::stratified_by_user(corpus, 0.2, seed)
    }

    /// Fraction of documents in the training set.
    pub fn train_fraction(&self) -> f64 {
        let total = self.train.len() + self.test.len();
        if total == 0 {
            return 0.0;
        }
        self.train.len() as f64 / total as f64
    }

    /// Training documents belonging to a given user.
    pub fn train_docs_of_user(&self, corpus: &Corpus, user: usize) -> Vec<DocumentId> {
        self.train
            .iter()
            .copied()
            .filter(|&d| corpus.document(d).map(|doc| doc.user) == Some(user))
            .collect()
    }

    /// Test documents belonging to a given user.
    pub fn test_docs_of_user(&self, corpus: &Corpus, user: usize) -> Vec<DocumentId> {
        self.test
            .iter()
            .copied()
            .filter(|&d| corpus.document(d).map(|doc| doc.user) == Some(user))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusGenerator, CorpusSpec};

    fn corpus() -> Corpus {
        CorpusGenerator::new(CorpusSpec::tiny()).generate()
    }

    #[test]
    fn split_is_a_partition() {
        let c = corpus();
        let s = TrainTestSplit::demo_protocol(&c, 1);
        assert_eq!(s.train.len() + s.test.len(), c.len());
        let mut all: Vec<_> = s.train.iter().chain(s.test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), c.len());
    }

    #[test]
    fn demo_protocol_is_roughly_twenty_percent() {
        let c = corpus();
        let s = TrainTestSplit::demo_protocol(&c, 2);
        let f = s.train_fraction();
        assert!((0.15..=0.25).contains(&f), "train fraction {f}");
    }

    #[test]
    fn every_user_has_training_documents() {
        let c = corpus();
        let s = TrainTestSplit::demo_protocol(&c, 3);
        for user in 0..c.num_users() {
            assert!(
                !s.train_docs_of_user(&c, user).is_empty(),
                "user {user} has no training docs"
            );
            assert!(
                !s.test_docs_of_user(&c, user).is_empty(),
                "user {user} has no test docs"
            );
        }
    }

    #[test]
    fn split_is_deterministic() {
        let c = corpus();
        assert_eq!(
            TrainTestSplit::demo_protocol(&c, 7),
            TrainTestSplit::demo_protocol(&c, 7)
        );
        assert_ne!(
            TrainTestSplit::demo_protocol(&c, 7),
            TrainTestSplit::demo_protocol(&c, 8)
        );
    }

    #[test]
    fn fraction_parameter_is_respected() {
        let c = corpus();
        let s = TrainTestSplit::stratified_by_user(&c, 0.5, 4);
        let f = s.train_fraction();
        assert!((0.4..=0.6).contains(&f), "train fraction {f}");
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn invalid_fraction_panics() {
        TrainTestSplit::stratified_by_user(&corpus(), 1.5, 0);
    }
}
