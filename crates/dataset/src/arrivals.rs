//! Arrival times for a streaming document workload.
//!
//! The paper's workflow is ongoing — "P2PDocTagger will automatically update
//! the classification model(s) in the back-end" as documents keep arriving and
//! users keep refining (§2) — so the streaming session layer needs a *when*
//! for every document, not just a *what*. This module assigns each corpus
//! document an arrival time from a per-user Poisson process with **interest
//! drift**: early arrivals are drawn from a user's core interests (the popular
//! tags the generator gave them), later arrivals shift toward rarer,
//! exploratory topics. Golder & Huberman observe exactly this dynamic in
//! collaborative tagging systems — stable early vocabularies, drifting tails —
//! and it is what makes incremental model updates non-trivial: the examples a
//! model sees late are *not* distributed like the ones it warm-started from.

use crate::corpus::{Corpus, DocumentId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the arrival-time generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Length of the arrival window in (simulated) seconds; every document
    /// arrives in `[0, horizon_secs)`.
    pub horizon_secs: f64,
    /// Interest drift in `[0, 1]`: `0.0` shuffles each user's documents
    /// uniformly over time, `1.0` orders them strictly from core-interest
    /// (popular-tag) documents to exploratory (rare-tag) ones.
    pub drift: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        Self {
            horizon_secs: 3_600.0,
            drift: 0.6,
            seed: 42,
        }
    }
}

/// One document arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival time in microseconds since the start of the session (the
    /// resolution the p2psim clock uses).
    pub time_micros: u64,
    /// The arriving document.
    pub doc: DocumentId,
}

impl Arrival {
    /// Arrival time in seconds.
    pub fn time_secs(&self) -> f64 {
        self.time_micros as f64 / 1e6
    }
}

/// Arrival times for every document of a corpus, sorted by time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalTimeline {
    /// All arrivals sorted by `(time_micros, doc)`.
    arrivals: Vec<Arrival>,
    /// Arrival time per document id (parallel to the corpus).
    per_doc_micros: Vec<u64>,
    horizon_secs: f64,
}

impl ArrivalTimeline {
    /// Generates arrival times for every document of `corpus`.
    ///
    /// Each user's arrival instants are a homogeneous Poisson process on
    /// `[0, horizon)` conditioned on the user's document count — i.e. sorted
    /// uniform order statistics, which is the exact conditional distribution.
    /// The user's documents are then matched to those instants in drift
    /// order: a document's drift rank mixes its mean tag-popularity rank
    /// (corpus tag ids are popularity-ordered by the generator) with uniform
    /// noise, weighted by [`ArrivalSpec::drift`].
    pub fn generate(corpus: &Corpus, spec: &ArrivalSpec) -> Self {
        assert!(spec.horizon_secs > 0.0, "horizon must be positive");
        let drift = spec.drift.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let num_tags = corpus.num_tags().max(1) as f64;
        let mut per_doc_micros = vec![0u64; corpus.len()];
        for docs in corpus.documents_by_user() {
            if docs.is_empty() {
                continue;
            }
            // Conditioned Poisson process: n sorted uniforms over the window.
            let mut times: Vec<u64> = (0..docs.len())
                .map(|_| (rng.gen_range(0.0..spec.horizon_secs) * 1e6) as u64)
                .collect();
            times.sort_unstable();
            // Drift rank: popular-tag documents first, exploratory ones last.
            let mut ranked: Vec<(f64, DocumentId)> = docs
                .iter()
                .map(|&d| {
                    let tags = corpus.tag_ids_of(d);
                    let mean_rank = if tags.is_empty() {
                        0.5
                    } else {
                        tags.iter().map(|&t| t as f64).sum::<f64>() / tags.len() as f64 / num_tags
                    };
                    let noise: f64 = rng.gen_range(0.0..1.0);
                    (drift * mean_rank + (1.0 - drift) * noise, d)
                })
                .collect();
            ranked.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            for (&t, &(_, d)) in times.iter().zip(&ranked) {
                per_doc_micros[d] = t;
            }
        }
        let mut arrivals: Vec<Arrival> = per_doc_micros
            .iter()
            .enumerate()
            .map(|(doc, &time_micros)| Arrival { time_micros, doc })
            .collect();
        arrivals.sort_by_key(|a| (a.time_micros, a.doc));
        Self {
            arrivals,
            per_doc_micros,
            horizon_secs: spec.horizon_secs,
        }
    }

    /// Number of arrivals (= corpus documents).
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The arrival window length in seconds.
    pub fn horizon_secs(&self) -> f64 {
        self.horizon_secs
    }

    /// All arrivals, sorted by time.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// The arrival time of one document, in seconds.
    pub fn arrival_secs(&self, doc: DocumentId) -> f64 {
        self.per_doc_micros[doc] as f64 / 1e6
    }

    /// The documents arriving in `[from_secs, to_secs)`, in arrival order.
    pub fn arrivals_between(&self, from_secs: f64, to_secs: f64) -> &[Arrival] {
        self.arrivals_between_micros(
            (from_secs.max(0.0) * 1e6) as u64,
            (to_secs.max(0.0) * 1e6) as u64,
        )
    }

    /// The documents arriving in `[from, to)` microseconds, in arrival order.
    /// Integer bounds let epoch drivers partition the timeline without
    /// float-rounding gaps or overlaps at window boundaries.
    pub fn arrivals_between_micros(&self, from: u64, to: u64) -> &[Arrival] {
        let lo = self.arrivals.partition_point(|a| a.time_micros < from);
        let hi = self.arrivals.partition_point(|a| a.time_micros < to);
        &self.arrivals[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusGenerator, CorpusSpec};

    fn corpus() -> Corpus {
        CorpusGenerator::new(CorpusSpec::tiny()).generate()
    }

    #[test]
    fn every_document_arrives_exactly_once_inside_the_horizon() {
        let c = corpus();
        let tl = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        assert_eq!(tl.len(), c.len());
        let mut docs: Vec<DocumentId> = tl.arrivals().iter().map(|a| a.doc).collect();
        docs.sort_unstable();
        docs.dedup();
        assert_eq!(docs.len(), c.len());
        for a in tl.arrivals() {
            assert!(a.time_secs() < tl.horizon_secs());
        }
        for w in tl.arrivals().windows(2) {
            assert!(w[0].time_micros <= w[1].time_micros);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let c = corpus();
        let a = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        let b = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        assert_eq!(a.arrivals(), b.arrivals());
        let other = ArrivalTimeline::generate(
            &c,
            &ArrivalSpec {
                seed: 7,
                ..Default::default()
            },
        );
        assert_ne!(a.arrivals(), other.arrivals());
    }

    #[test]
    fn windows_partition_the_timeline() {
        let c = corpus();
        let tl = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        let h = tl.horizon_secs();
        let total: usize = (0..4)
            .map(|i| {
                tl.arrivals_between(i as f64 * h / 4.0, (i + 1) as f64 * h / 4.0)
                    .len()
            })
            .sum();
        assert_eq!(total, tl.len());
        assert!(tl.arrivals_between(h, h * 2.0).is_empty());
    }

    #[test]
    fn full_drift_orders_each_user_from_popular_to_rare_tags() {
        let c = corpus();
        let spec = ArrivalSpec {
            drift: 1.0,
            ..Default::default()
        };
        let tl = ArrivalTimeline::generate(&c, &spec);
        let num_tags = c.num_tags() as f64;
        let mean_rank = |docs: &[DocumentId]| -> f64 {
            let ranks: Vec<f64> = docs
                .iter()
                .map(|&d| {
                    let tags = c.tag_ids_of(d);
                    tags.iter().map(|&t| t as f64).sum::<f64>() / tags.len() as f64 / num_tags
                })
                .collect();
            ranks.iter().sum::<f64>() / ranks.len().max(1) as f64
        };
        // Pool the early and late halves over all users: early arrivals must
        // skew toward popular (low-rank) tags.
        let mut early = Vec::new();
        let mut late = Vec::new();
        for docs in c.documents_by_user() {
            let mut by_time = docs.clone();
            by_time.sort_by_key(|&d| (tl.arrival_secs(d) * 1e6) as u64);
            let mid = by_time.len() / 2;
            early.extend_from_slice(&by_time[..mid]);
            late.extend_from_slice(&by_time[mid..]);
        }
        assert!(
            mean_rank(&early) + 0.02 < mean_rank(&late),
            "early {} late {}",
            mean_rank(&early),
            mean_rank(&late)
        );
    }
}
