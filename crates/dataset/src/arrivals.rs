//! Arrival times for a streaming document workload.
//!
//! The paper's workflow is ongoing — "P2PDocTagger will automatically update
//! the classification model(s) in the back-end" as documents keep arriving and
//! users keep refining (§2) — so the streaming session layer needs a *when*
//! for every document, not just a *what*. This module assigns each corpus
//! document an arrival time from a per-user Poisson process with **interest
//! drift**: early arrivals are drawn from a user's core interests (the popular
//! tags the generator gave them), later arrivals shift toward rarer,
//! exploratory topics. Golder & Huberman observe exactly this dynamic in
//! collaborative tagging systems — stable early vocabularies, drifting tails —
//! and it is what makes incremental model updates non-trivial: the examples a
//! model sees late are *not* distributed like the ones it warm-started from.

use crate::corpus::{Corpus, DocumentId};
use crate::error::{self, SpecError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Flash-crowd bursts layered on the per-user Poisson arrival processes.
///
/// Each burst models a self-exciting spike targeted at one tag's community of
/// documents: an external trigger (a news event, a popular link) makes
/// documents about that topic arrive in a dense front-loaded window instead
/// of spread across the horizon. Every burst picks an onset and a target tag;
/// each document carrying that tag is pulled into the burst window with
/// probability [`Self::attraction`], landing at a quadratically-decaying
/// offset after the onset (the spike peaks immediately, then cools).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    /// Number of flash-crowd events over the horizon.
    pub num_bursts: usize,
    /// Width of each burst window in seconds (capped at the horizon).
    pub width_secs: f64,
    /// Probability that a document carrying the burst's target tag is pulled
    /// into the burst window, in `[0, 1]`.
    pub attraction: f64,
}

impl Default for BurstSpec {
    fn default() -> Self {
        Self {
            num_bursts: 3,
            width_secs: 120.0,
            attraction: 0.8,
        }
    }
}

/// Parameters of the arrival-time generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Length of the arrival window in (simulated) seconds; every document
    /// arrives in `[0, horizon_secs)`.
    pub horizon_secs: f64,
    /// Interest drift in `[0, 1]`: `0.0` shuffles each user's documents
    /// uniformly over time, `1.0` orders them strictly from core-interest
    /// (popular-tag) documents to exploratory (rare-tag) ones.
    pub drift: f64,
    /// Flash-crowd bursts layered on the Poisson processes (`None` keeps the
    /// smooth arrival model and generates bit-identically to earlier versions
    /// of this crate).
    pub bursts: Option<BurstSpec>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        Self {
            horizon_secs: 3_600.0,
            drift: 0.6,
            bursts: None,
            seed: 42,
        }
    }
}

impl ArrivalSpec {
    /// Validates every field, returning a typed error naming the first
    /// offending field instead of clamping silently or panicking inside
    /// generation.
    pub fn validate(&self) -> Result<(), SpecError> {
        error::positive("horizon_secs", self.horizon_secs)?;
        error::unit_interval("drift", self.drift)?;
        if let Some(b) = &self.bursts {
            error::nonzero("num_bursts", b.num_bursts)?;
            error::positive("width_secs", b.width_secs)?;
            error::unit_interval("attraction", b.attraction)?;
        }
        Ok(())
    }
}

/// One document arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival time in microseconds since the start of the session (the
    /// resolution the p2psim clock uses).
    pub time_micros: u64,
    /// The arriving document.
    pub doc: DocumentId,
}

impl Arrival {
    /// Arrival time in seconds.
    pub fn time_secs(&self) -> f64 {
        self.time_micros as f64 / 1e6
    }
}

/// Arrival times for every document of a corpus, sorted by time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalTimeline {
    /// All arrivals sorted by `(time_micros, doc)`.
    arrivals: Vec<Arrival>,
    /// Arrival time per document id (parallel to the corpus).
    per_doc_micros: Vec<u64>,
    horizon_secs: f64,
}

impl ArrivalTimeline {
    /// Generates arrival times for every document of `corpus`, panicking
    /// (with the validation error's message) if the spec is invalid. Use
    /// [`Self::try_generate`] to handle invalid specs gracefully.
    pub fn generate(corpus: &Corpus, spec: &ArrivalSpec) -> Self {
        Self::try_generate(corpus, spec).unwrap_or_else(|e| panic!("invalid ArrivalSpec: {e}"))
    }

    /// Generates arrival times for every document of `corpus`, rejecting
    /// invalid specs with a typed [`SpecError`].
    ///
    /// Each user's arrival instants are a homogeneous Poisson process on
    /// `[0, horizon)` conditioned on the user's document count — i.e. sorted
    /// uniform order statistics, which is the exact conditional distribution.
    /// The user's documents are then matched to those instants in drift
    /// order: a document's drift rank mixes its mean tag-popularity rank
    /// (corpus tag ids are popularity-ordered by the generator) with uniform
    /// noise, weighted by [`ArrivalSpec::drift`]. Finally, any configured
    /// [`BurstSpec`] flash crowds are layered on top, re-timing a fraction of
    /// each burst's target-tag documents into a dense spike window.
    pub fn try_generate(corpus: &Corpus, spec: &ArrivalSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        let drift = spec.drift;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let num_tags = corpus.num_tags().max(1) as f64;
        let mut per_doc_micros = vec![0u64; corpus.len()];
        for docs in corpus.documents_by_user() {
            if docs.is_empty() {
                continue;
            }
            // Conditioned Poisson process: n sorted uniforms over the window.
            let mut times: Vec<u64> = (0..docs.len())
                .map(|_| (rng.gen_range(0.0..spec.horizon_secs) * 1e6) as u64)
                .collect();
            times.sort_unstable();
            // Drift rank: popular-tag documents first, exploratory ones last.
            let mut ranked: Vec<(f64, DocumentId)> = docs
                .iter()
                .map(|&d| {
                    let tags = corpus.tag_ids_of(d);
                    let mean_rank = if tags.is_empty() {
                        0.5
                    } else {
                        tags.iter().map(|&t| t as f64).sum::<f64>() / tags.len() as f64 / num_tags
                    };
                    let noise: f64 = rng.gen_range(0.0..1.0);
                    (drift * mean_rank + (1.0 - drift) * noise, d)
                })
                .collect();
            ranked.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            for (&t, &(_, d)) in times.iter().zip(&ranked) {
                per_doc_micros[d] = t;
            }
        }

        // Flash-crowd bursts: re-time target-tag documents into spikes.
        if let Some(bursts) = &spec.bursts {
            if corpus.num_tags() > 0 && !corpus.is_empty() {
                let horizon_micros = (spec.horizon_secs * 1e6) as u64;
                for _ in 0..bursts.num_bursts {
                    let width = bursts.width_secs.min(spec.horizon_secs);
                    let onset = if spec.horizon_secs > width {
                        rng.gen_range(0.0..spec.horizon_secs - width)
                    } else {
                        0.0
                    };
                    let target = rng.gen_range(0..corpus.num_tags()) as u32;
                    for (doc, micros) in per_doc_micros.iter_mut().enumerate() {
                        if !corpus.tag_ids_of(doc).contains(&target)
                            || !rng.gen_bool(bursts.attraction)
                        {
                            continue;
                        }
                        // Front-loaded spike: squaring the uniform offset
                        // concentrates arrivals right after the onset, with a
                        // decaying tail across the window (self-excitation
                        // cooling off).
                        let u: f64 = rng.gen_range(0.0..1.0);
                        let t = ((onset + width * u * u) * 1e6) as u64;
                        *micros = t.min(horizon_micros.saturating_sub(1));
                    }
                }
            }
        }

        let mut arrivals: Vec<Arrival> = per_doc_micros
            .iter()
            .enumerate()
            .map(|(doc, &time_micros)| Arrival { time_micros, doc })
            .collect();
        arrivals.sort_by_key(|a| (a.time_micros, a.doc));
        Ok(Self {
            arrivals,
            per_doc_micros,
            horizon_secs: spec.horizon_secs,
        })
    }

    /// Number of arrivals (= corpus documents).
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The arrival window length in seconds.
    pub fn horizon_secs(&self) -> f64 {
        self.horizon_secs
    }

    /// All arrivals, sorted by time.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// The arrival time of one document, in seconds.
    pub fn arrival_secs(&self, doc: DocumentId) -> f64 {
        self.per_doc_micros[doc] as f64 / 1e6
    }

    /// The documents arriving in `[from_secs, to_secs)`, in arrival order.
    pub fn arrivals_between(&self, from_secs: f64, to_secs: f64) -> &[Arrival] {
        self.arrivals_between_micros(
            (from_secs.max(0.0) * 1e6) as u64,
            (to_secs.max(0.0) * 1e6) as u64,
        )
    }

    /// The documents arriving in `[from, to)` microseconds, in arrival order.
    /// Integer bounds let epoch drivers partition the timeline without
    /// float-rounding gaps or overlaps at window boundaries.
    pub fn arrivals_between_micros(&self, from: u64, to: u64) -> &[Arrival] {
        let lo = self.arrivals.partition_point(|a| a.time_micros < from);
        let hi = self.arrivals.partition_point(|a| a.time_micros < to);
        &self.arrivals[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusGenerator, CorpusSpec};

    fn corpus() -> Corpus {
        CorpusGenerator::new(CorpusSpec::tiny()).generate()
    }

    #[test]
    fn every_document_arrives_exactly_once_inside_the_horizon() {
        let c = corpus();
        let tl = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        assert_eq!(tl.len(), c.len());
        let mut docs: Vec<DocumentId> = tl.arrivals().iter().map(|a| a.doc).collect();
        docs.sort_unstable();
        docs.dedup();
        assert_eq!(docs.len(), c.len());
        for a in tl.arrivals() {
            assert!(a.time_secs() < tl.horizon_secs());
        }
        for w in tl.arrivals().windows(2) {
            assert!(w[0].time_micros <= w[1].time_micros);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let c = corpus();
        let a = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        let b = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        assert_eq!(a.arrivals(), b.arrivals());
        let other = ArrivalTimeline::generate(
            &c,
            &ArrivalSpec {
                seed: 7,
                ..Default::default()
            },
        );
        assert_ne!(a.arrivals(), other.arrivals());
    }

    #[test]
    fn windows_partition_the_timeline() {
        let c = corpus();
        let tl = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        let h = tl.horizon_secs();
        let total: usize = (0..4)
            .map(|i| {
                tl.arrivals_between(i as f64 * h / 4.0, (i + 1) as f64 * h / 4.0)
                    .len()
            })
            .sum();
        assert_eq!(total, tl.len());
        assert!(tl.arrivals_between(h, h * 2.0).is_empty());
    }

    fn bursty_spec(seed: u64) -> ArrivalSpec {
        ArrivalSpec {
            bursts: Some(BurstSpec {
                num_bursts: 2,
                width_secs: 180.0,
                attraction: 0.9,
            }),
            seed,
            ..ArrivalSpec::default()
        }
    }

    #[test]
    fn bursts_preserve_the_timeline_invariants() {
        let c = corpus();
        let tl = ArrivalTimeline::generate(&c, &bursty_spec(42));
        assert_eq!(tl.len(), c.len());
        let mut docs: Vec<DocumentId> = tl.arrivals().iter().map(|a| a.doc).collect();
        docs.sort_unstable();
        docs.dedup();
        assert_eq!(docs.len(), c.len(), "every document arrives exactly once");
        for a in tl.arrivals() {
            assert!(a.time_secs() < tl.horizon_secs());
        }
        for w in tl.arrivals().windows(2) {
            assert!(w[0].time_micros <= w[1].time_micros);
        }
    }

    #[test]
    fn bursts_concentrate_arrivals_into_spike_windows() {
        // The densest burst-width window of a bursty timeline must hold
        // clearly more arrivals than the densest window of the smooth one.
        let c = corpus();
        let spec = bursty_spec(42);
        let width_micros = (spec.bursts.as_ref().unwrap().width_secs * 1e6) as u64;
        let densest = |tl: &ArrivalTimeline| {
            tl.arrivals()
                .iter()
                .map(|a| {
                    tl.arrivals_between_micros(
                        a.time_micros,
                        a.time_micros.saturating_add(width_micros),
                    )
                    .len()
                })
                .max()
                .unwrap_or(0)
        };
        let smooth = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        let bursty = ArrivalTimeline::generate(&c, &spec);
        assert!(
            densest(&bursty) > densest(&smooth),
            "bursty densest window {} not denser than smooth {}",
            densest(&bursty),
            densest(&smooth)
        );
    }

    /// Same seed ⇒ identical `Arrival` sequence; different seed ⇒ different
    /// order. Guards the RNG threading through the burst layer: bursts draw
    /// from the same seeded stream, so replays must stay bit-identical.
    #[test]
    fn bursty_timelines_replay_deterministically() {
        let c = corpus();
        let a = ArrivalTimeline::generate(&c, &bursty_spec(7));
        let b = ArrivalTimeline::generate(&c, &bursty_spec(7));
        assert_eq!(a.arrivals(), b.arrivals());
        let other = ArrivalTimeline::generate(&c, &bursty_spec(8));
        assert_ne!(a.arrivals(), other.arrivals());
    }

    #[test]
    fn no_bursts_reproduces_the_legacy_stream() {
        // `bursts: None` must not consume randomness: legacy seeds keep
        // generating bit-identical timelines.
        let c = corpus();
        let plain = ArrivalTimeline::generate(&c, &ArrivalSpec::default());
        let explicit = ArrivalTimeline::generate(
            &c,
            &ArrivalSpec {
                bursts: None,
                ..ArrivalSpec::default()
            },
        );
        assert_eq!(plain.arrivals(), explicit.arrivals());
    }

    #[test]
    fn validation_rejects_bad_specs_with_typed_errors() {
        use crate::error::SpecError;
        let c = corpus();
        let bad_horizon = ArrivalSpec {
            horizon_secs: 0.0,
            ..ArrivalSpec::default()
        };
        assert_eq!(
            bad_horizon.validate(),
            Err(SpecError::NonPositive {
                field: "horizon_secs",
                value: 0.0
            })
        );
        assert!(ArrivalTimeline::try_generate(&c, &bad_horizon).is_err());
        let bad_drift = ArrivalSpec {
            drift: 1.2,
            ..ArrivalSpec::default()
        };
        assert_eq!(
            bad_drift.validate(),
            Err(SpecError::UnitInterval {
                field: "drift",
                value: 1.2
            })
        );
        let bad_burst = ArrivalSpec {
            bursts: Some(BurstSpec {
                attraction: -0.5,
                ..BurstSpec::default()
            }),
            ..ArrivalSpec::default()
        };
        assert_eq!(
            bad_burst.validate(),
            Err(SpecError::UnitInterval {
                field: "attraction",
                value: -0.5
            })
        );
        let zero_bursts = ArrivalSpec {
            bursts: Some(BurstSpec {
                num_bursts: 0,
                ..BurstSpec::default()
            }),
            ..ArrivalSpec::default()
        };
        assert_eq!(
            zero_bursts.validate(),
            Err(SpecError::ZeroCount {
                field: "num_bursts"
            })
        );
    }

    #[test]
    fn full_drift_orders_each_user_from_popular_to_rare_tags() {
        let c = corpus();
        let spec = ArrivalSpec {
            drift: 1.0,
            ..Default::default()
        };
        let tl = ArrivalTimeline::generate(&c, &spec);
        let num_tags = c.num_tags() as f64;
        let mean_rank = |docs: &[DocumentId]| -> f64 {
            let ranks: Vec<f64> = docs
                .iter()
                .map(|&d| {
                    let tags = c.tag_ids_of(d);
                    tags.iter().map(|&t| t as f64).sum::<f64>() / tags.len() as f64 / num_tags
                })
                .collect();
            ranks.iter().sum::<f64>() / ranks.len().max(1) as f64
        };
        // Pool the early and late halves over all users: early arrivals must
        // skew toward popular (low-rank) tags.
        let mut early = Vec::new();
        let mut late = Vec::new();
        for docs in c.documents_by_user() {
            let mut by_time = docs.clone();
            by_time.sort_by_key(|&d| (tl.arrival_secs(d) * 1e6) as u64);
            let mid = by_time.len() / 2;
            early.extend_from_slice(&by_time[..mid]);
            late.extend_from_slice(&by_time[mid..]);
        }
        assert!(
            mean_rank(&early) + 0.02 < mean_rank(&late),
            "early {} late {}",
            mean_rank(&early),
            mean_rank(&late)
        );
    }
}
