//! Corpus data structures: documents, tags, users.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a document within a corpus.
pub type DocumentId = usize;

/// Identifier of a user (a peer's human owner) within a corpus.
pub type UserId = usize;

/// A text document with its ground-truth tags and owning user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Dense id within the corpus.
    pub id: DocumentId,
    /// The owning user (documents never leave the user's peer as raw text).
    pub user: UserId,
    /// The raw text (what the preprocessing pipeline consumes).
    pub text: String,
    /// Ground-truth tag names, as assigned by the user.
    pub tags: BTreeSet<String>,
}

/// A collection of documents with a registry of tag names.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    documents: Vec<Document>,
    tag_names: Vec<String>,
    tag_ids: BTreeMap<String, u32>,
    num_users: usize,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a tag name and returns its dense id.
    pub fn intern_tag(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.tag_ids.get(name) {
            return id;
        }
        let id = self.tag_names.len() as u32;
        self.tag_names.push(name.to_string());
        self.tag_ids.insert(name.to_string(), id);
        id
    }

    /// The id of a tag name, if registered.
    pub fn tag_id(&self, name: &str) -> Option<u32> {
        self.tag_ids.get(name).copied()
    }

    /// The name of a tag id.
    pub fn tag_name(&self, id: u32) -> Option<&str> {
        self.tag_names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct tags.
    pub fn num_tags(&self) -> usize {
        self.tag_names.len()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Adds a document, interning its tags, and returns its id.
    pub fn push_document(
        &mut self,
        user: UserId,
        text: String,
        tags: BTreeSet<String>,
    ) -> DocumentId {
        let id = self.documents.len();
        for t in &tags {
            self.intern_tag(t);
        }
        self.num_users = self.num_users.max(user + 1);
        self.documents.push(Document {
            id,
            user,
            text,
            tags,
        });
        id
    }

    /// All documents, ordered by id.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// A document by id.
    pub fn document(&self, id: DocumentId) -> Option<&Document> {
        self.documents.get(id)
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// The tag-id set of a document.
    pub fn tag_ids_of(&self, id: DocumentId) -> BTreeSet<u32> {
        self.documents[id]
            .tags
            .iter()
            .filter_map(|t| self.tag_id(t))
            .collect()
    }

    /// Documents owned by each user, ordered by user id.
    pub fn documents_by_user(&self) -> Vec<Vec<DocumentId>> {
        let mut out = vec![Vec::new(); self.num_users];
        for d in &self.documents {
            out[d.user].push(d.id);
        }
        out
    }

    /// Number of documents carrying each tag, keyed by tag id.
    pub fn tag_frequencies(&self) -> BTreeMap<u32, usize> {
        let mut out = BTreeMap::new();
        for d in &self.documents {
            for t in &d.tags {
                if let Some(id) = self.tag_id(t) {
                    *out.entry(id).or_insert(0) += 1;
                }
            }
        }
        out
    }

    /// Mean number of tags per document.
    pub fn mean_tags_per_document(&self) -> f64 {
        if self.documents.is_empty() {
            return 0.0;
        }
        self.documents.iter().map(|d| d.tags.len()).sum::<usize>() as f64
            / self.documents.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn push_and_lookup() {
        let mut c = Corpus::new();
        let id = c.push_document(
            0,
            "rust systems programming".into(),
            tags(&["rust", "code"]),
        );
        assert_eq!(id, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.num_tags(), 2);
        assert_eq!(c.num_users(), 1);
        assert_eq!(c.document(0).unwrap().user, 0);
        assert!(c.tag_id("rust").is_some());
        assert_eq!(c.tag_name(c.tag_id("rust").unwrap()), Some("rust"));
    }

    #[test]
    fn interning_is_idempotent() {
        let mut c = Corpus::new();
        let a = c.intern_tag("web");
        let b = c.intern_tag("web");
        assert_eq!(a, b);
        assert_eq!(c.num_tags(), 1);
    }

    #[test]
    fn tag_ids_of_document() {
        let mut c = Corpus::new();
        c.push_document(0, "a".into(), tags(&["x", "y"]));
        c.push_document(1, "b".into(), tags(&["y"]));
        let ids = c.tag_ids_of(0);
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&c.tag_id("y").unwrap()));
    }

    #[test]
    fn per_user_grouping_and_frequencies() {
        let mut c = Corpus::new();
        c.push_document(0, "a".into(), tags(&["x"]));
        c.push_document(1, "b".into(), tags(&["x", "y"]));
        c.push_document(0, "c".into(), tags(&["y"]));
        let by_user = c.documents_by_user();
        assert_eq!(by_user.len(), 2);
        assert_eq!(by_user[0], vec![0, 2]);
        assert_eq!(by_user[1], vec![1]);
        let freq = c.tag_frequencies();
        assert_eq!(freq[&c.tag_id("x").unwrap()], 2);
        assert_eq!(freq[&c.tag_id("y").unwrap()], 2);
        assert!((c.mean_tags_per_document() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::new();
        assert!(c.is_empty());
        assert_eq!(c.mean_tags_per_document(), 0.0);
        assert!(c.tag_frequencies().is_empty());
    }
}
