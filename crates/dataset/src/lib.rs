//! # dataset — synthetic delicious-like multi-label corpus
//!
//! The P2PDocTagger demonstration uses "real data from <http://delicious.com>
//! collected by Wetzker et al, which consists of public bookmarks of about
//! 950,000 users … Users with at least 50 (and, to avoid spammers, less than
//! 200) annotated bookmarks were chosen and the corresponding web documents
//! retrieved. 20 percent of the documents with tags are used for training the
//! automated tagger, while tags of the remaining 80 percent documents are
//! removed to be tagged by P2PDocTagger" (§3).
//!
//! The crawl itself is not redistributable, so this crate generates a
//! **synthetic corpus with the same statistical shape**:
//!
//! * tag popularity follows a Zipf law (a few hugely popular tags, a long
//!   tail) — as observed in the del.icio.us analyses;
//! * documents are multi-labelled (1–4 tags) and their text is drawn from a
//!   per-tag topic word distribution mixed with background vocabulary, so tags
//!   are *predictable from content but not extractable from it verbatim*;
//! * users hold between 50 and 199 documents each and focus on a subset of
//!   topics (interest locality), which is what makes the per-peer data
//!   non-IID in the P2P experiments;
//! * a [`split::TrainTestSplit`] reproduces the 20 % / 80 % protocol.
//!
//! See `DESIGN.md` for the substitution rationale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod corpus;
pub mod error;
pub mod generator;
pub mod split;
pub mod vectorize;

/// Common re-exports.
pub mod prelude {
    pub use crate::arrivals::{Arrival, ArrivalSpec, ArrivalTimeline, BurstSpec};
    pub use crate::corpus::{Corpus, Document, DocumentId, UserId};
    pub use crate::error::SpecError;
    pub use crate::generator::{CommunitySpec, CorpusGenerator, CorpusSpec};
    pub use crate::split::TrainTestSplit;
    pub use crate::vectorize::VectorizedCorpus;
}

pub use arrivals::{Arrival, ArrivalSpec, ArrivalTimeline, BurstSpec};
pub use corpus::{Corpus, Document, DocumentId, UserId};
pub use error::SpecError;
pub use generator::{CommunitySpec, CorpusGenerator, CorpusSpec};
pub use split::TrainTestSplit;
pub use vectorize::VectorizedCorpus;
