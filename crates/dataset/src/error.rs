//! Typed validation errors for workload specifications.
//!
//! The generators used to silently clamp out-of-range knobs (ratios outside
//! `[0, 1]`) or panic deep inside generation (document-count ranges). Both
//! behaviors hide configuration mistakes until a scenario quietly produces a
//! different workload than the experimenter asked for, so specs are now
//! validated up front: [`crate::CorpusSpec::validate`] and
//! [`crate::ArrivalSpec::validate`] return a [`SpecError`] naming the exact
//! field and offending value.

use std::fmt;

/// A workload specification field failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// `min_docs_per_user` must be strictly below `max_docs_per_user`
    /// (the upper bound is exclusive).
    DocsPerUserRange {
        /// The configured minimum.
        min: usize,
        /// The configured (exclusive) maximum.
        max: usize,
    },
    /// A count field that must be at least one was zero.
    ZeroCount {
        /// The offending field.
        field: &'static str,
    },
    /// A field that must be strictly positive and finite was not.
    NonPositive {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A probability or ratio field left the unit interval `[0, 1]`.
    UnitInterval {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DocsPerUserRange { min, max } => write!(
                f,
                "min_docs_per_user ({min}) must be strictly below max_docs_per_user ({max})"
            ),
            SpecError::ZeroCount { field } => write!(f, "{field} must be at least 1"),
            SpecError::NonPositive { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            SpecError::UnitInterval { field, value } => {
                write!(f, "{field} must lie in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Validates that `value` is a probability/ratio in `[0, 1]`.
pub(crate) fn unit_interval(field: &'static str, value: f64) -> Result<(), SpecError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(SpecError::UnitInterval { field, value })
    }
}

/// Validates that `value` is strictly positive and finite.
pub(crate) fn positive(field: &'static str, value: f64) -> Result<(), SpecError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(SpecError::NonPositive { field, value })
    }
}

/// Validates that `value` is at least one.
pub(crate) fn nonzero(field: &'static str, value: usize) -> Result<(), SpecError> {
    if value == 0 {
        Err(SpecError::ZeroCount { field })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = SpecError::DocsPerUserRange { min: 10, max: 10 };
        assert!(e.to_string().contains("max_docs_per_user"));
        let e = SpecError::UnitInterval {
            field: "imitation",
            value: 1.5,
        };
        assert!(e.to_string().contains("imitation"));
        assert!(e.to_string().contains("1.5"));
        let e = SpecError::NonPositive {
            field: "tag_zipf_exponent",
            value: 0.0,
        };
        assert!(e.to_string().contains("tag_zipf_exponent"));
        let e = SpecError::ZeroCount { field: "num_tags" };
        assert!(e.to_string().contains("num_tags"));
    }

    #[test]
    fn helpers_accept_and_reject() {
        assert!(unit_interval("x", 0.0).is_ok());
        assert!(unit_interval("x", 1.0).is_ok());
        assert!(unit_interval("x", -0.01).is_err());
        assert!(unit_interval("x", f64::NAN).is_err());
        assert!(positive("x", 1e-9).is_ok());
        assert!(positive("x", 0.0).is_err());
        assert!(positive("x", f64::INFINITY).is_err());
        assert!(nonzero("x", 1).is_ok());
        assert!(nonzero("x", 0).is_err());
    }
}
