//! A minimal Rust source scanner for the lint pass.
//!
//! The rules in [`crate::lint`] are token-level, so the only parsing this
//! crate needs is the part that keeps token matching honest: separating
//! **code** from **comments and literals**. [`scan`] produces
//!
//! * a *code view* — the source with every comment, string/char literal body
//!   and doc comment blanked to spaces, one output character per input
//!   character so line and column structure survive exactly;
//! * the list of comment lines (line number + text), which is where the
//!   `// SAFETY:` audit and the `// lint: allow(...)` escape hatch live.
//!
//! The scanner understands line comments, nested block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth),
//! byte strings (`b"…"`, `br#"…"#`), char/byte-char literals and
//! lifetimes. It does not need to be a full lexer: anything it cannot
//! classify it passes through as code, which at worst produces a diagnostic
//! a human reviews (and can `allow` with a reason) — never a silently
//! skipped file.

/// One scanned source file: the blanked code view plus its comments.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// Source lines with comments and literal bodies blanked to spaces.
    pub code_lines: Vec<String>,
    /// `(1-based line, comment text)` — one entry per comment *line* (a
    /// multi-line block comment contributes one entry per line it spans),
    /// text includes the `//` / `/*` markers.
    pub comments: Vec<(usize, String)>,
}

impl ScannedFile {
    /// All comment texts recorded for `line`.
    pub fn comments_on(&self, line: usize) -> impl Iterator<Item = &str> + '_ {
        self.comments
            .iter()
            .filter(move |(l, _)| *l == line)
            .map(|(_, t)| t.as_str())
    }

    /// Whether the code view of `line` (1-based) contains any code.
    pub fn line_has_code(&self, line: usize) -> bool {
        self.code_lines
            .get(line - 1)
            .is_some_and(|l| !l.trim().is_empty())
    }
}

/// Scans `source` into a [`ScannedFile`]. Never fails: unterminated
/// literals or comments simply run to end of file, blanked.
pub fn scan(source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut code = String::with_capacity(source.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes a literal/comment character into the code view as a blank,
    // preserving newlines so the view stays line-aligned.
    macro_rules! blank {
        ($c:expr) => {
            if $c == '\n' {
                code.push('\n');
                line += 1;
            } else {
                code.push(' ');
            }
        };
    }

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                let start = line;
                let mut text = String::new();
                while i < n && chars[i] != '\n' {
                    text.push(chars[i]);
                    code.push(' ');
                    i += 1;
                }
                comments.push((start, text));
            }
            '/' if next == Some('*') => {
                let mut depth = 1usize;
                let mut text = String::from("/*");
                blank!('/');
                blank!('*');
                i += 2;
                while i < n && depth > 0 {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        text.push_str("/*");
                        blank!('/');
                        blank!('*');
                        i += 2;
                    } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        text.push_str("*/");
                        blank!('*');
                        blank!('/');
                        i += 2;
                    } else if c == '\n' {
                        comments.push((line, std::mem::take(&mut text)));
                        blank!('\n');
                        i += 1;
                    } else {
                        text.push(c);
                        blank!(c);
                        i += 1;
                    }
                }
                if !text.is_empty() {
                    comments.push((line, text));
                }
            }
            '"' => i = consume_string(&chars, i, &mut code, &mut line),
            'r' | 'b' if !prev_is_ident(&code) => {
                // Possible raw string r"…" / r#"…"#, byte string b"…",
                // byte-raw br#"…"#, or byte char b'…'.
                let mut j = i;
                if c == 'b' && chars.get(j + 1) == Some(&'r') {
                    j += 1;
                }
                let mut hashes = 0usize;
                let mut k = j + 1;
                while chars.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                let is_raw = j > i || c == 'r';
                if chars.get(k) == Some(&'"') && (is_raw || hashes == 0) {
                    // Emit the prefix (r/b/#) as blanks, then the body.
                    for &p in chars.iter().take(k + 1).skip(i) {
                        blank!(p);
                    }
                    i = k + 1;
                    if is_raw {
                        i = consume_raw_body(&chars, i, hashes, &mut code, &mut line);
                    } else {
                        // b"…": re-enter the escaped-string consumer from
                        // just after the opening quote.
                        i = consume_string_body(&chars, i, &mut code, &mut line);
                    }
                } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                    blank!('b');
                    i += 1;
                    i = consume_char_or_lifetime(&chars, i, &mut code, &mut line);
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            '\'' => i = consume_char_or_lifetime(&chars, i, &mut code, &mut line),
            '\n' => {
                code.push('\n');
                line += 1;
                i += 1;
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }

    ScannedFile {
        code_lines: code.lines().map(str::to_string).collect(),
        comments,
    }
}

/// Whether the last code-view character continues an identifier (so an
/// `r`/`b` here is the tail of a name like `attr`, not a literal prefix).
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Consumes a `"…"` literal starting at the opening quote; returns the index
/// just past the closing quote. Everything is blanked.
fn consume_string(chars: &[char], mut i: usize, code: &mut String, line: &mut usize) -> usize {
    // Opening quote.
    code.push(' ');
    i += 1;
    consume_string_body(chars, i, code, line)
}

fn consume_string_body(chars: &[char], mut i: usize, code: &mut String, line: &mut usize) -> usize {
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' && i + 1 < chars.len() {
            for _ in 0..2 {
                if chars[i] == '\n' {
                    code.push('\n');
                    *line += 1;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
        } else if c == '"' {
            code.push(' ');
            return i + 1;
        } else {
            if c == '\n' {
                code.push('\n');
                *line += 1;
            } else {
                code.push(' ');
            }
            i += 1;
        }
    }
    i
}

/// Consumes a raw string body (after the opening quote) terminated by
/// `"` + `hashes` hash marks.
fn consume_raw_body(
    chars: &[char],
    mut i: usize,
    hashes: usize,
    code: &mut String,
    line: &mut usize,
) -> usize {
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for h in 0..hashes {
                if chars.get(i + 1 + h) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..=hashes {
                    code.push(' ');
                    i += 1;
                }
                return i;
            }
        }
        if chars[i] == '\n' {
            code.push('\n');
            *line += 1;
        } else {
            code.push(' ');
        }
        i += 1;
    }
    i
}

/// At a `'`: consumes a char literal (blanked) or passes a lifetime through
/// as code. Returns the index after whatever was consumed.
fn consume_char_or_lifetime(
    chars: &[char],
    i: usize,
    code: &mut String,
    line: &mut usize,
) -> usize {
    let is_char_literal = match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    };
    if !is_char_literal {
        // A lifetime: emit the quote and let the identifier follow as code.
        code.push('\'');
        return i + 1;
    }
    // Blank the whole literal, scanning to the closing quote (escapes like
    // '\u{1F600}' span several chars).
    let mut j = i + 1;
    code.push(' ');
    while j < chars.len() {
        let c = chars[j];
        if c == '\\' && j + 1 < chars.len() {
            code.push(' ');
            code.push(' ');
            j += 2;
            continue;
        }
        if c == '\n' {
            code.push('\n');
            *line += 1;
            j += 1;
            continue;
        }
        code.push(' ');
        j += 1;
        if c == '\'' {
            break;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1;\n";
        let f = scan(src);
        assert!(!f.code_lines[0].contains("HashMap"));
        assert!(f.code_lines[0].contains("let x ="));
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].1.contains("HashMap here"));
        assert_eq!(f.comments[0].0, 1);
        assert_eq!(f.code_lines[1], "let y = 1;");
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let src = "a /* one\n /* two */ still\n */ b\n";
        let f = scan(src);
        assert_eq!(f.code_lines[0].trim(), "a");
        assert_eq!(f.code_lines[1].trim(), "");
        assert_eq!(f.code_lines[2].trim(), "b");
        // One comment entry per spanned line.
        assert_eq!(f.comments.iter().filter(|(l, _)| *l == 1).count(), 1);
        assert_eq!(f.comments.iter().filter(|(l, _)| *l == 2).count(), 1);
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"unsafe // not code\"#; let c = '\\n'; let l: &'a str = q;\n";
        let f = scan(src);
        assert!(!f.code_lines[0].contains("unsafe"));
        assert!(f.comments.is_empty());
        assert!(f.code_lines[0].contains("&'a str"));
    }

    #[test]
    fn byte_strings_and_lifetimes() {
        let src = "f(b\"Instant::now\", b'x'); struct A<'long>(&'long u8);\n";
        let f = scan(src);
        assert!(!f.code_lines[0].contains("Instant"));
        assert!(f.code_lines[0].contains("struct A<'long>"));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "one\ntwo /* x\ny */ three\nfour\n";
        let f = scan(src);
        assert_eq!(f.code_lines.len(), 4);
        assert_eq!(f.code_lines[3], "four");
    }
}
