//! `cargo run -p xtask -- <command>`: workspace invariant tooling.
//!
//! Commands:
//!
//! * `lint [--root PATH] [--unsafe-report] [--rules]` — run the static
//!   invariant checker over the workspace; exit nonzero on any violation.
//! * `stress-parallel [--quick]` — drive the `vendor/parallel`
//!   scheduler-permutation stress suite (adversarial chunk orderings ×
//!   worker counts, asserting bit-identical outputs).

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::lint;

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root. Compile-time anchored, so the binary
    // works from any invocation directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("stress-parallel") => cmd_stress(&args[1..]),
        _ => {
            eprintln!("usage: xtask <lint [--root PATH] [--unsafe-report] [--rules] | stress-parallel [--quick]>");
            ExitCode::FAILURE
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root = workspace_root();
    let mut unsafe_report = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = PathBuf::from(p),
                    None => {
                        eprintln!("--root needs a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--unsafe-report" => unsafe_report = true,
            "--rules" => {
                for rule in lint::RULES {
                    println!("{:<16} {}", rule.id, rule.description);
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let report = match lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint failed to read sources: {e}");
            return ExitCode::FAILURE;
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }
    let (documented, total) = report.unsafe_coverage();
    if unsafe_report || documented < total {
        println!("\nunsafe inventory:");
        for site in &report.unsafe_sites {
            let status = if site.documented { "ok " } else { "MISSING" };
            println!(
                "  [{status}] {}:{} {}",
                site.file,
                site.line,
                if site.summary.is_empty() {
                    "(no SAFETY comment)"
                } else {
                    &site.summary
                }
            );
        }
    }
    let pct = if total == 0 {
        100.0
    } else {
        100.0 * documented as f64 / total as f64
    };
    println!(
        "scanned {} files; unsafe inventory: {total} site(s), {documented} documented ({pct:.1}%)",
        report.files_scanned
    );
    if report.diagnostics.is_empty() {
        println!("lint clean");
        ExitCode::SUCCESS
    } else {
        println!("error: {} violation(s)", report.diagnostics.len());
        ExitCode::FAILURE
    }
}

/// Runs the `vendor/parallel` scheduler-permutation stress suite in its own
/// process (`cargo test -p parallel --test stress`). `--quick` keeps the
/// default problem sizes; the full mode enlarges them via
/// `P2PDT_STRESS_FULL=1`.
fn cmd_stress(args: &[String]) -> ExitCode {
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(bad) = args.iter().find(|a| *a != "--quick") {
        eprintln!("unknown stress-parallel option `{bad}`");
        return ExitCode::FAILURE;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = std::process::Command::new(cargo);
    cmd.current_dir(workspace_root()).args([
        "test",
        "-p",
        "parallel",
        "--test",
        "stress",
        "--release",
    ]);
    if !quick {
        cmd.env("P2PDT_STRESS_FULL", "1");
    }
    match cmd.status() {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("failed to run cargo: {e}");
            ExitCode::FAILURE
        }
    }
}
