//! Workspace tooling: the invariant lint (`xtask lint`) and the
//! `vendor/parallel` scheduler-permutation stress driver
//! (`xtask stress-parallel`).
//!
//! The library half exists so the lint engine is testable: the fixture
//! corpus under `crates/xtask/fixtures/` and the tier-1
//! `tests/workspace_clean.rs` both drive [`lint::lint_source`] /
//! [`lint::run`] directly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod lint;
