//! The workspace invariant checker behind `cargo run -p xtask -- lint`.
//!
//! Every reproducibility claim in this repo — bit-identical replay, RNG-
//! neutral workload knobs, bounds-check-free CSR kernels, measured-not-
//! estimated wire bytes — rests on invariants that a single careless edit
//! can silently break. This pass turns those invariants into diagnostics.
//! It is deliberately **token-level**: after [`crate::lexer::scan`] strips
//! comments and literals, the rules match token patterns. That makes the
//! checker dependency-free (no syn, no rustc plumbing — this environment
//! has no crates.io access) at the cost of being a heuristic: it can miss
//! exotic constructions, and it can flag a site that is actually fine. The
//! first is acceptable for a tripwire; the second is what the escape hatch
//! is for:
//!
//! ```text
//! // lint: allow(hash-iter, reason = "aggregate sum, order-insensitive")
//! ```
//!
//! An allow suppresses exactly one rule on the line it trails (or, on its
//! own line, the next code line). A missing or empty `reason` is itself a
//! violation, and so is an allow that no longer suppresses anything — the
//! allowlist cannot rot silently.
//!
//! # Rule catalog
//!
//! | id | invariant |
//! |----|-----------|
//! | `hash-iter` | no iteration over `HashMap`/`HashSet` (order-sensitive paths must sort or use `BTreeMap`) |
//! | `wall-clock` | no `Instant`/`SystemTime` outside `crates/bench`, `vendor/criterion`, `crates/doctagger/src/timing.rs` and the real-socket boundary (`crates/peerd`, `vendor/reactor`) |
//! | `thread-spawn` | no `thread::spawn`/`mpsc` outside `vendor/parallel` (the deterministic substrate) and the real-socket boundary (`crates/peerd`, `vendor/reactor`) |
//! | `seedless-rng` | every RNG flows from an explicit seed — no `thread_rng`/`from_entropy`/`OsRng`/`getrandom` |
//! | `unsafe-safety` | every `unsafe` carries a `// SAFETY:` comment naming the proved invariant |
//! | `wire-discipline` | `p2pclassify` sends charge encoded/estimated byte values, never raw integer literals |
//! | `send-unchecked` | `p2pclassify` never discards a send `Result` — lost sends must be tracked, not ignored |
//!
//! Adding a rule: implement it over the token stream in [`lint_source`],
//! add its id + description to [`RULES`], a bad fixture under
//! `crates/xtask/fixtures/bad/`, an allowed fixture under `fixtures/ok/`,
//! and a row in DESIGN.md's rule table.

use crate::lexer::{self, ScannedFile};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// A lint rule's identity and the invariant it enforces.
pub struct Rule {
    /// Stable id used in diagnostics and `allow(...)` annotations.
    pub id: &'static str,
    /// One-line description of the invariant.
    pub description: &'static str,
}

/// The rule catalog (ids are what `allow(...)` must name).
pub const RULES: &[Rule] = &[
    Rule {
        id: "hash-iter",
        description: "no iteration over HashMap/HashSet: hash order is nondeterministic; \
                      sort first or use BTreeMap",
    },
    Rule {
        id: "wall-clock",
        description: "no Instant/SystemTime outside crates/bench, vendor/criterion, \
                      crates/doctagger/src/timing.rs and the audited real-socket boundary \
                      (crates/peerd, vendor/reactor): sim code runs on virtual time",
    },
    Rule {
        id: "thread-spawn",
        description: "no thread::spawn or std::sync::mpsc outside vendor/parallel and the \
                      audited real-socket boundary (crates/peerd, vendor/reactor): sim \
                      concurrency goes through the index-deterministic substrate",
    },
    Rule {
        id: "seedless-rng",
        description: "every RNG must be constructed from an explicit seed: no thread_rng, \
                      from_entropy, OsRng or getrandom",
    },
    Rule {
        id: "unsafe-safety",
        description: "every `unsafe` must carry a `// SAFETY:` comment naming the proved \
                      invariant",
    },
    Rule {
        id: "wire-discipline",
        description: "p2pclassify network sends must charge bytes from the WireCost/frame \
                      layer, never a raw integer literal",
    },
    Rule {
        id: "send-unchecked",
        description: "p2pclassify must not discard a send Result (`let _ =` or a \
                      statement-level `.ok()`): every lost send must be tracked or \
                      explicitly allowed",
    },
    Rule {
        id: "allow-syntax",
        description: "lint allows must name a known rule and a non-empty reason",
    },
    Rule {
        id: "unused-allow",
        description: "a lint allow that suppresses nothing must be removed",
    },
];

/// Whether `id` names a rule in [`RULES`].
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `unsafe` occurrence for the audit inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` token.
    pub line: usize,
    /// Whether a `// SAFETY:` comment (or a reasoned allow) covers it.
    pub documented: bool,
    /// First line of the SAFETY comment (or the allow reason).
    pub summary: String,
}

/// Lint results for a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All surviving (non-allowed) violations, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every `unsafe` site found, documented or not.
    pub unsafe_sites: Vec<UnsafeSite>,
}

impl Report {
    /// `(documented, total)` unsafe coverage.
    pub fn unsafe_coverage(&self) -> (usize, usize) {
        let total = self.unsafe_sites.len();
        let documented = self.unsafe_sites.iter().filter(|s| s.documented).count();
        (documented, total)
    }
}

// ---------------------------------------------------------------------------
// Tokenization of the blanked code view.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokKind {
    Ident,
    Num,
    Punct,
}

#[derive(Debug, Clone)]
struct Tok {
    line: usize,
    kind: TokKind,
    text: String,
}

fn tokenize(code_lines: &[String]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (li, line) in code_lines.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    line: li + 1,
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part: consume `.` only when a digit follows, so
                // ranges (`0..n`) and method calls (`1.max(x)`) survive.
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    line: li + 1,
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                });
            } else {
                toks.push(Tok {
                    line: li + 1,
                    kind: TokKind::Punct,
                    text: c.to_string(),
                });
                i += 1;
            }
        }
    }
    toks
}

// ---------------------------------------------------------------------------
// Allow annotations.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Allow {
    rule: String,
    reason: String,
    /// Line of the comment itself.
    comment_line: usize,
    /// Line of code this allow suppresses.
    attach: usize,
    used: bool,
}

/// Parses `lint: allow(rule, reason = "...")` annotations out of comments.
/// Malformed annotations become `allow-syntax` diagnostics immediately.
///
/// Only plain `//` comments whose content *starts* with `lint:` are
/// annotations — doc comments (`///`, `//!`) and prose that merely mentions
/// the syntax never parse, so documentation about the escape hatch cannot
/// accidentally become one.
fn parse_allows(file: &str, scanned: &ScannedFile, diags: &mut Vec<Diagnostic>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, text) in &scanned.comments {
        let content = text.trim_start();
        let Some(content) = content.strip_prefix("//") else {
            continue; // block comment: not an annotation position
        };
        if content.starts_with('/') || content.starts_with('!') {
            continue; // doc comment
        }
        let content = content.trim_start();
        if !content.starts_with("lint:") {
            continue;
        }
        let mut rest = content;
        while let Some(pos) = rest.find("lint:") {
            rest = &rest[pos + "lint:".len()..];
            let trimmed = rest.trim_start();
            let Some(inner) = trimmed.strip_prefix("allow(") else {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: *line,
                    rule: "allow-syntax",
                    message: "expected `lint: allow(<rule>, reason = \"...\")`".to_string(),
                });
                break;
            };
            let Some(close) = inner.rfind(')') else {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: *line,
                    rule: "allow-syntax",
                    message: "unclosed `lint: allow(`".to_string(),
                });
                break;
            };
            let body = &inner[..close];
            rest = &inner[close + 1..];
            let (rule, tail) = match body.split_once(',') {
                Some((r, t)) => (r.trim(), t.trim()),
                None => (body.trim(), ""),
            };
            if !is_known_rule(rule) {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: *line,
                    rule: "allow-syntax",
                    message: format!("unknown lint rule `{rule}` in allow"),
                });
                continue;
            }
            let reason = tail
                .strip_prefix("reason")
                .map(|t| t.trim_start())
                .and_then(|t| t.strip_prefix('='))
                .map(|t| t.trim())
                .and_then(|t| t.strip_prefix('"'))
                .and_then(|t| t.rfind('"').map(|q| t[..q].trim().to_string()))
                .unwrap_or_default();
            if reason.is_empty() {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: *line,
                    rule: "allow-syntax",
                    message: format!("allow({rule}) needs a non-empty reason = \"...\""),
                });
                continue;
            }
            // Attach to the trailing code line, else the next code line.
            let attach = if scanned.line_has_code(*line) {
                *line
            } else {
                (*line + 1..=scanned.code_lines.len())
                    .find(|&l| scanned.line_has_code(l))
                    .unwrap_or(*line)
            };
            allows.push(Allow {
                rule: rule.to_string(),
                reason,
                comment_line: *line,
                attach,
                used: false,
            });
        }
    }
    allows
}

// ---------------------------------------------------------------------------
// Per-file pass.
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

const ENTROPY_TOKENS: &[&str] = &[
    "from_entropy",
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "EntropyRng",
    "getrandom",
    "from_os_rng",
];

/// The audited real-socket boundary: the peer daemon and its reactor shim
/// necessarily touch the wall clock (epoll timeouts, timer wheel) and spawn
/// one thread per peer. Simulation and protocol crates stay banned — the
/// fixtures pin that scoping.
fn socket_boundary(path: &str) -> bool {
    path.starts_with("crates/peerd/") || path.starts_with("vendor/reactor/")
}

fn wall_clock_allowed(path: &str) -> bool {
    path.starts_with("crates/bench/")
        || path.starts_with("vendor/criterion/")
        || path == "crates/doctagger/src/timing.rs"
        || socket_boundary(path)
}

fn thread_spawn_allowed(path: &str) -> bool {
    path.starts_with("vendor/parallel/") || socket_boundary(path)
}

fn wire_rule_applies(path: &str) -> bool {
    path.starts_with("crates/p2pclassify/")
}

/// Identifiers in this file bound to a `HashMap`/`HashSet` — fields, typed
/// locals/params (`name: HashMap<..>`) and constructed locals
/// (`name = HashMap::new()`). Per-file scope is the documented granularity
/// of the heuristic.
fn tracked_hash_idents(toks: &[Tok]) -> BTreeMap<String, &'static str> {
    const SKIP: &[&str] = &["std", "collections", "hash_map", "hash_set", "&", "mut"];
    let mut tracked = BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        let kind: &'static str = if t.text == "HashMap" {
            "HashMap"
        } else {
            "HashSet"
        };
        // Walk back over the path/reference prefix to the binding operator.
        // A `::` pair is a path separator to step over; a lone `:` is the
        // annotation operator we are looking for, so it terminates the walk.
        let mut j = i;
        while j > 0 {
            let prev = toks[j - 1].text.as_str();
            if prev == ":" {
                if j >= 2 && toks[j - 2].text == ":" {
                    j -= 2;
                    continue;
                }
                break;
            }
            if SKIP.contains(&prev) {
                j -= 1;
                continue;
            }
            break;
        }
        if j == 0 {
            continue;
        }
        let op = &toks[j - 1];
        if (op.text == ":" || op.text == "=") && j >= 2 && toks[j - 2].kind == TokKind::Ident {
            let name = toks[j - 2].text.clone();
            if name != "Item" && name != "Output" && name != "Self" {
                tracked.insert(name, kind);
            }
        }
    }
    tracked
}

/// Runs every rule over one file. `path` is the workspace-relative path
/// (it selects which path-scoped rules apply). Returns the surviving
/// diagnostics and the file's unsafe inventory.
pub fn lint_source(path: &str, source: &str) -> (Vec<Diagnostic>, Vec<UnsafeSite>) {
    let scanned = lexer::scan(source);
    let toks = tokenize(&scanned.code_lines);
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut syntax_diags: Vec<Diagnostic> = Vec::new();
    let mut allows = parse_allows(path, &scanned, &mut syntax_diags);
    let mut unsafe_sites: Vec<UnsafeSite> = Vec::new();

    let diag = |line: usize, rule: &'static str, message: String| Diagnostic {
        file: path.to_string(),
        line,
        rule,
        message,
    };

    // --- hash-iter -------------------------------------------------------
    let tracked = tracked_hash_idents(&toks);
    for i in 0..toks.len() {
        let t = &toks[i];
        // `name.iter()` / `self.name.keys()` …
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && toks[i - 2].kind == TokKind::Ident
        {
            if let Some(kind) = tracked.get(&toks[i - 2].text) {
                raw.push(diag(
                    t.line,
                    "hash-iter",
                    format!(
                        "iteration (`.{}()`) over {kind} `{}`: hash order is \
                         nondeterministic — sort, use BTreeMap/BTreeSet, or allow \
                         with an order-insensitivity argument",
                        t.text,
                        toks[i - 2].text
                    ),
                ));
            }
        }
        // `for x in &name {` / `for x in name {` / `for x in &mut self.name {`
        if t.kind == TokKind::Ident && t.text == "in" {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|n| n.text == "&" || n.text == "mut")
            {
                j += 1;
            }
            let (recv, brace) = if toks.get(j).is_some_and(|n| n.text == "self")
                && toks.get(j + 1).is_some_and(|n| n.text == ".")
            {
                (toks.get(j + 2), toks.get(j + 3))
            } else {
                (toks.get(j), toks.get(j + 1))
            };
            if let (Some(recv), Some(brace)) = (recv, brace) {
                if recv.kind == TokKind::Ident && brace.text == "{" {
                    if let Some(kind) = tracked.get(&recv.text) {
                        raw.push(diag(
                            recv.line,
                            "hash-iter",
                            format!(
                                "`for` loop over {kind} `{}`: hash order is \
                                 nondeterministic — sort or use BTreeMap/BTreeSet",
                                recv.text
                            ),
                        ));
                    }
                }
            }
        }
    }

    // --- wall-clock ------------------------------------------------------
    if !wall_clock_allowed(path) {
        for t in &toks {
            if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
                raw.push(diag(
                    t.line,
                    "wall-clock",
                    format!(
                        "`{}` outside crates/bench: simulation code runs on virtual \
                         time — route measurement through doctagger::timing",
                        t.text
                    ),
                ));
            }
        }
    }

    // --- thread-spawn ----------------------------------------------------
    if !thread_spawn_allowed(path) {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.text == "spawn" && i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == ":") {
                raw.push(diag(
                    t.line,
                    "thread-spawn",
                    "thread spawn outside vendor/parallel: all concurrency must go \
                     through the index-deterministic substrate"
                        .to_string(),
                ));
            }
            if t.text == "mpsc" {
                raw.push(diag(
                    t.line,
                    "thread-spawn",
                    "std::sync::mpsc outside vendor/parallel: channel wakeup order is \
                     scheduler-dependent"
                        .to_string(),
                ));
            }
        }
    }

    // --- seedless-rng ----------------------------------------------------
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if ENTROPY_TOKENS.contains(&t.text.as_str()) {
            raw.push(diag(
                t.line,
                "seedless-rng",
                format!(
                    "`{}` draws from an entropy source: every RNG must flow from an \
                     explicit seed (seed_from_u64 / from_seed)",
                    t.text
                ),
            ));
        }
        // `rand::random` (free-function entropy path).
        if t.text == "random"
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "rand"
        {
            raw.push(diag(
                t.line,
                "seedless-rng",
                "`rand::random` draws from an entropy source: seed explicitly".to_string(),
            ));
        }
    }

    // --- unsafe-safety ---------------------------------------------------
    for t in &toks {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        let mut summary = String::new();
        let mut documented = scanned.comments_on(t.line).any(|c| {
            let hit = c.contains("SAFETY:");
            if hit {
                summary = safety_summary(c);
            }
            hit
        });
        if !documented {
            // Walk upward through the contiguous comment/attribute/blank
            // block directly above the unsafe token.
            let mut l = t.line.saturating_sub(1);
            while l >= 1 && t.line - l <= 12 {
                if scanned.line_has_code(l) {
                    let code = scanned.code_lines[l - 1].trim().to_string();
                    if code.starts_with('#') {
                        l -= 1;
                        continue; // attribute, keep walking
                    }
                    break; // real code terminates the comment block
                }
                if let Some(c) = scanned.comments_on(l).find(|c| c.contains("SAFETY:")) {
                    documented = true;
                    summary = safety_summary(c);
                    break;
                }
                if l == 1 {
                    break;
                }
                l -= 1;
            }
        }
        if !documented {
            // A reasoned allow counts as documentation (the reason is the
            // audit trail), handled below via the normal suppression path.
            raw.push(diag(
                t.line,
                "unsafe-safety",
                "`unsafe` without a `// SAFETY:` comment naming the proved invariant".to_string(),
            ));
        }
        unsafe_sites.push(UnsafeSite {
            file: path.to_string(),
            line: t.line,
            documented,
            summary,
        });
    }

    // --- wire-discipline -------------------------------------------------
    if wire_rule_applies(path) {
        let mut i = 0;
        while i < toks.len() {
            let is_send_call = toks[i].text == "send"
                && toks[i].kind == TokKind::Ident
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(");
            if !is_send_call {
                i += 1;
                continue;
            }
            // Collect the top-level arguments of the call.
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut args: Vec<Vec<&Tok>> = vec![Vec::new()];
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 1 => {
                        args.push(Vec::new());
                        j += 1;
                        continue;
                    }
                    _ => {}
                }
                if depth > 0 {
                    args.last_mut().expect("args never empty").push(t);
                }
                j += 1;
            }
            if let Some(last) = args.last().filter(|a| !a.is_empty()) {
                let has_num = last.iter().any(|t| t.kind == TokKind::Num);
                let literal_only = last.iter().all(|t| {
                    t.kind == TokKind::Num
                        || (t.kind == TokKind::Punct && "+-*/()".contains(&t.text))
                });
                if has_num && literal_only {
                    raw.push(diag(
                        last[0].line,
                        "wire-discipline",
                        "network send charges a raw integer literal: byte costs must \
                         come from the WireCost/frame layer (encoded frame length or \
                         the estimator)"
                            .to_string(),
                    ));
                }
            }
            i = j;
        }
    }

    // --- send-unchecked --------------------------------------------------
    if wire_rule_applies(path) {
        const SEND_METHODS: &[&str] = &["send", "send_frame", "send_sized"];
        let is_send_at = |i: usize| -> bool {
            toks[i].kind == TokKind::Ident
                && SEND_METHODS.contains(&toks[i].text.as_str())
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
        };
        // `let _ = ... .send*( ... ) ... ;` — the wildcard binding throws the
        // Result away without the compiler's unused-must-use backstop.
        let mut i = 0;
        while i < toks.len() {
            let is_discard_let = toks[i].kind == TokKind::Ident
                && toks[i].text == "let"
                && toks.get(i + 1).is_some_and(|t| t.text == "_")
                && toks.get(i + 2).is_some_and(|t| t.text == "=");
            if !is_discard_let {
                i += 1;
                continue;
            }
            let let_line = toks[i].line;
            let mut depth = 0usize;
            let mut j = i + 3;
            let mut discards_send = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => break,
                    _ => {}
                }
                if is_send_at(j) {
                    discards_send = true;
                }
                j += 1;
            }
            if discards_send {
                raw.push(diag(
                    let_line,
                    "send-unchecked",
                    "`let _ =` discards a send Result: track the loss (protocol \
                     counters / ReliableLink) or allow with a reason"
                        .to_string(),
                ));
            }
            i = j;
        }
        // `.send*(...).ok();` — the statement-level discard spelling.
        for i in 0..toks.len() {
            if !is_send_at(i) {
                continue;
            }
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let trailing_ok = toks.get(j).is_some_and(|t| t.text == ".")
                && toks.get(j + 1).is_some_and(|t| t.text == "ok")
                && toks.get(j + 2).is_some_and(|t| t.text == "(")
                && toks.get(j + 3).is_some_and(|t| t.text == ")")
                && toks.get(j + 4).is_some_and(|t| t.text == ";");
            // Only a *statement* discards: walk back over the receiver chain
            // (`self.link.` …) — if the expression starts a statement the
            // value is dead, while `let got = ….ok();` or an argument
            // position keeps it alive.
            let mut k = i - 1; // the `.` before the send ident
            while k > 0
                && (toks[k - 1].kind == TokKind::Ident
                    || toks[k - 1].text == "."
                    || toks[k - 1].text == "&"
                    || toks[k - 1].text == "mut")
            {
                k -= 1;
            }
            let starts_statement = k == 0 || matches!(toks[k - 1].text.as_str(), ";" | "{" | "}");
            if trailing_ok && starts_statement {
                raw.push(diag(
                    toks[i].line,
                    "send-unchecked",
                    "statement-level `.ok()` discards a send Result: track the loss \
                     (protocol counters / ReliableLink) or allow with a reason"
                        .to_string(),
                ));
            }
        }
    }

    // --- apply allows ----------------------------------------------------
    let mut diags = syntax_diags;
    for d in raw {
        let suppressed = allows
            .iter_mut()
            .find(|a| a.rule == d.rule && a.attach == d.line);
        match suppressed {
            Some(a) => {
                a.used = true;
                if d.rule == "unsafe-safety" {
                    if let Some(site) = unsafe_sites
                        .iter_mut()
                        .find(|s| s.line == d.line && !s.documented)
                    {
                        site.documented = true;
                        site.summary = format!("allowed: {}", a.reason);
                    }
                }
            }
            None => diags.push(d),
        }
    }
    for a in &allows {
        if !a.used {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: a.comment_line,
                rule: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing on line {} — remove it",
                    a.rule, a.attach
                ),
            });
        }
    }
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (diags, unsafe_sites)
}

fn safety_summary(comment: &str) -> String {
    let after = comment
        .split_once("SAFETY:")
        .map(|(_, t)| t.trim())
        .unwrap_or("");
    after.trim_end_matches("*/").trim().to_string()
}

// ---------------------------------------------------------------------------
// Tree walk.
// ---------------------------------------------------------------------------

/// Directories never scanned (build output, VCS metadata, and the lint's own
/// deliberately-violating fixture corpus).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Lints every `.rs` file under `root` (skipping `target/`, dotdirs and the
/// fixture corpus) and aggregates the per-file results.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in collect_rs_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&path)?;
        let (diags, sites) = lint_source(&rel, &source);
        report.files_scanned += 1;
        report.diagnostics.extend(diags);
        report.unsafe_sites.extend(sites);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src).0
    }

    #[test]
    fn tracked_idents_cover_fields_locals_and_params() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &HashSet<u64>) { let mut g = std::collections::HashMap::new(); }\n";
        let scanned = lexer::scan(src);
        let tracked = tracked_hash_idents(&tokenize(&scanned.code_lines));
        assert_eq!(tracked.get("m"), Some(&"HashMap"));
        assert_eq!(tracked.get("s"), Some(&"HashSet"));
        assert_eq!(tracked.get("g"), Some(&"HashMap"));
        // A Vec of maps is not itself a map.
        let src2 = "struct T { v: Vec<HashMap<u32, u32>> }\n";
        let scanned2 = lexer::scan(src2);
        let tracked2 = tracked_hash_idents(&tokenize(&scanned2.code_lines));
        assert!(tracked2.is_empty());
    }

    #[test]
    fn hash_iter_flags_methods_and_for_loops() {
        let src = "fn f(m: &HashMap<u32, u32>) -> u32 {\n\
                   \x20   let s: u32 = m.values().sum();\n\
                   \x20   for (k, v) in m {\n\
                   \x20   }\n\
                   \x20   s\n\
                   }\n";
        let d = diags("crates/ml/src/x.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "hash-iter").count(), 2);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn hash_iter_ignores_untracked_receivers() {
        // `.values()` on a SparseVector is a plain accessor.
        let src = "fn f(v: &SparseVector) -> usize { v.values().len() }\n";
        assert!(diags("crates/ml/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_scoped_by_path() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(diags("crates/ml/src/x.rs", src).len(), 1);
        assert!(diags("crates/bench/src/x.rs", src).is_empty());
        assert!(diags("crates/doctagger/src/timing.rs", src).is_empty());
        assert!(diags("vendor/criterion/src/lib.rs", src).is_empty());
        // The real-socket boundary is audited; the sim crates stay banned.
        assert!(diags("crates/peerd/src/daemon.rs", src).is_empty());
        assert!(diags("vendor/reactor/src/timer.rs", src).is_empty());
        assert_eq!(diags("crates/p2psim/src/x.rs", src).len(), 1);
    }

    #[test]
    fn thread_and_rng_rules_fire() {
        let src =
            "fn f() { std::thread::spawn(|| ()); let (tx, rx) = std::sync::mpsc::channel(); }\n";
        let d = diags("crates/p2psim/src/x.rs", src);
        assert!(d.iter().filter(|d| d.rule == "thread-spawn").count() >= 2);
        assert!(diags("vendor/parallel/src/lib.rs", src).is_empty());
        assert!(diags("crates/peerd/src/loopback.rs", src).is_empty());
        assert!(diags("vendor/reactor/src/poll.rs", src).is_empty());
        let src = "fn f() { let r = StdRng::from_entropy(); let x: f64 = rand::random(); }\n";
        let d = diags("crates/ml/src/x.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "seedless-rng").count(), 2);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let naked = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let (d, sites) = lint_source("crates/ml/src/x.rs", naked);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unsafe-safety");
        assert!(!sites[0].documented);

        let documented = "fn f(p: *const u8) -> u8 {\n\
                          \x20   // SAFETY: caller guarantees p is valid.\n\
                          \x20   unsafe { *p }\n\
                          }\n";
        let (d, sites) = lint_source("crates/ml/src/x.rs", documented);
        assert!(d.is_empty());
        assert!(sites[0].documented);
        assert!(sites[0].summary.contains("caller guarantees"));

        // An attribute between the comment and the unsafe token is fine.
        let with_attr = "// SAFETY: delegates to System.\n\
                         #[allow(clippy::x)]\n\
                         unsafe impl A for B {}\n";
        let (d, _) = lint_source("crates/ml/src/x.rs", with_attr);
        assert!(d.is_empty());
    }

    #[test]
    fn wire_discipline_flags_literal_costs_only_in_p2pclassify() {
        let bad = "fn f(net: &mut N) { net.send(a, b, MessageKind::Query, 1024).unwrap(); }\n";
        let d = diags("crates/p2pclassify/src/x.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "wire-discipline");
        // Arithmetic over literals is still a literal.
        let bad2 = "fn f(net: &mut N) { net.send(a, b, k, 64 * 1024); }\n";
        assert_eq!(diags("crates/p2pclassify/src/x.rs", bad2).len(), 1);
        // A computed value is fine; so is the same code outside p2pclassify.
        let good = "fn f(net: &mut N) { net.send(a, b, k, frame.len() as u64); }\n";
        assert!(diags("crates/p2pclassify/src/x.rs", good).is_empty());
        assert!(diags("crates/p2psim/src/x.rs", bad).is_empty());
    }

    #[test]
    fn send_unchecked_flags_discards_only_in_p2pclassify() {
        let wildcard = "fn f(net: &mut N) { let _ = net.send(a, b, k, frame.len()); }\n";
        let d = diags("crates/p2pclassify/src/x.rs", wildcard);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "send-unchecked");
        // The statement-level `.ok()` spelling.
        let okd = "fn f(net: &mut N) { net.send_frame(a, b, k, &frame).ok(); }\n";
        assert_eq!(diags("crates/p2pclassify/src/x.rs", okd).len(), 1);
        // Consuming the Result is fine: `?`, `.is_err()` in a branch, and
        // `.ok()` as an adapter all keep the outcome alive.
        let good = "fn f(net: &mut N) -> Result<(), E> {\n\
                    \x20   net.send(a, b, k, frame.len())?;\n\
                    \x20   if net.send_frame(a, b, k, &frame).is_err() { lost += 1; }\n\
                    \x20   let got = link.send_sized(net, a, b, k, n).ok();\n\
                    \x20   use_it(got);\n\
                    \x20   Ok(())\n\
                    }\n";
        assert!(diags("crates/p2pclassify/src/x.rs", good).is_empty());
        // `let _ =` over a non-send call is not this rule's business.
        let other = "fn f() { let _ = compute(); }\n";
        assert!(diags("crates/p2pclassify/src/x.rs", other).is_empty());
        // Path-scoped: the sim crate's own plumbing is exempt.
        assert!(diags("crates/p2psim/src/x.rs", wildcard).is_empty());
        // A reasoned allow suppresses.
        let allowed = "fn f(net: &mut N) {\n\
                       \x20   // lint: allow(send-unchecked, reason = \"best-effort hint\")\n\
                       \x20   let _ = net.send(a, b, k, frame.len());\n\
                       }\n";
        assert!(diags("crates/p2pclassify/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn allows_suppress_and_must_be_used_and_reasoned() {
        let allowed = "fn f(m: &HashMap<u32, u32>) -> u32 {\n\
                       \x20   // lint: allow(hash-iter, reason = \"sum is order-insensitive\")\n\
                       \x20   m.values().sum()\n\
                       }\n";
        assert!(diags("crates/ml/src/x.rs", allowed).is_empty());

        let trailing = "fn f(m: &HashMap<u32, u32>) -> u32 {\n\
                        \x20   m.values().sum() // lint: allow(hash-iter, reason = \"order-insensitive\")\n\
                        }\n";
        assert!(diags("crates/ml/src/x.rs", trailing).is_empty());

        let unreasoned = "fn f(m: &HashMap<u32, u32>) -> u32 {\n\
                          \x20   // lint: allow(hash-iter)\n\
                          \x20   m.values().sum()\n\
                          }\n";
        let d = diags("crates/ml/src/x.rs", unreasoned);
        assert!(d.iter().any(|d| d.rule == "allow-syntax"));
        assert!(d.iter().any(|d| d.rule == "hash-iter"));

        let unused = "// lint: allow(hash-iter, reason = \"stale\")\nfn f() {}\n";
        let d = diags("crates/ml/src/x.rs", unused);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unused-allow");

        let unknown = "// lint: allow(no-such-rule, reason = \"x\")\nfn f() {}\n";
        let d = diags("crates/ml/src/x.rs", unknown);
        assert!(d.iter().any(|d| d.rule == "allow-syntax"));
    }

    #[test]
    fn allowed_unsafe_counts_as_documented_with_audit_trail() {
        let src = "fn f(p: *const u8) -> u8 {\n\
                   \x20   // lint: allow(unsafe-safety, reason = \"ffi shim, invariant upstream\")\n\
                   \x20   unsafe { *p }\n\
                   }\n";
        let (d, sites) = lint_source("crates/ml/src/x.rs", src);
        assert!(d.is_empty());
        assert!(sites[0].documented);
        assert!(sites[0].summary.contains("ffi shim"));
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let src = "// thread_rng and Instant::now discussed here\n\
                   fn f() -> &'static str { \"unsafe HashMap thread_rng Instant\" }\n";
        assert!(diags("crates/ml/src/x.rs", src).is_empty());
    }
}
