//! The lint must catch every seeded violation in `fixtures/bad/` and stay
//! silent on every `fixtures/ok/` file. Fixture files are excluded from the
//! workspace walk (the `fixtures` dir is in the lint's skip list), so they
//! are linted here explicitly, each under a virtual workspace path that
//! makes the path-scoped rules apply.

use xtask::lint::lint_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn bad_fixtures_are_all_caught() {
    // (fixture file, virtual path it is linted under, rule, expected count)
    let cases: &[(&str, &str, &str, usize)] = &[
        (
            "bad/hash_iter.rs",
            "crates/ml/src/fixture.rs",
            "hash-iter",
            4,
        ),
        (
            "bad/seedless_rng.rs",
            "crates/p2psim/src/fixture.rs",
            "seedless-rng",
            4,
        ),
        (
            "bad/naked_unsafe.rs",
            "crates/textproc/src/fixture.rs",
            "unsafe-safety",
            2,
        ),
        (
            "bad/raw_wire_cost.rs",
            "crates/p2pclassify/src/fixture.rs",
            "wire-discipline",
            2,
        ),
        (
            "bad/wall_clock.rs",
            "crates/doctagger/src/fixture.rs",
            "wall-clock",
            2,
        ),
        (
            "bad/thread_spawn.rs",
            "crates/p2psim/src/fixture.rs",
            "thread-spawn",
            2,
        ),
        (
            "bad/send_unchecked.rs",
            "crates/p2pclassify/src/fixture.rs",
            "send-unchecked",
            3,
        ),
    ];
    for (file, vpath, rule, expected) in cases {
        let (diags, _) = lint_source(vpath, &fixture(file));
        let hits = diags.iter().filter(|d| d.rule == *rule).count();
        assert_eq!(
            hits, *expected,
            "{file}: expected {expected} {rule} diagnostics, got {hits}: {diags:#?}"
        );
        // Every diagnostic carries a usable location.
        for d in &diags {
            assert!(d.line > 0, "{file}: {d}");
            assert_eq!(d.file, *vpath);
        }
    }
}

#[test]
fn ok_fixtures_lint_clean() {
    let cases: &[(&str, &str)] = &[
        ("ok/hash_iter_allowed.rs", "crates/ml/src/fixture.rs"),
        (
            "ok/wall_clock_allowed.rs",
            "crates/doctagger/src/fixture.rs",
        ),
        ("ok/unsafe_documented.rs", "crates/textproc/src/fixture.rs"),
        ("ok/wire_measured.rs", "crates/p2pclassify/src/fixture.rs"),
        ("ok/send_checked.rs", "crates/p2pclassify/src/fixture.rs"),
        ("ok/seeded_rng.rs", "crates/p2psim/src/fixture.rs"),
    ];
    for (file, vpath) in cases {
        let (diags, _) = lint_source(vpath, &fixture(file));
        assert!(diags.is_empty(), "{file}: expected clean, got {diags:#?}");
    }
}

#[test]
fn bad_fixtures_outside_scoped_paths_do_not_fire_scoped_rules() {
    // wire-discipline only applies inside crates/p2pclassify.
    let (diags, _) = lint_source(
        "crates/p2psim/src/fixture.rs",
        &fixture("bad/raw_wire_cost.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
    // wall-clock is allowed in crates/bench.
    let (diags, _) = lint_source("crates/bench/src/fixture.rs", &fixture("bad/wall_clock.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
    // The real-socket boundary (peer daemon + reactor shim) is an audited
    // exception for both wall-clock and thread-spawn...
    for vpath in [
        "crates/peerd/src/fixture.rs",
        "vendor/reactor/src/fixture.rs",
    ] {
        let (diags, _) = lint_source(vpath, &fixture("bad/wall_clock.rs"));
        assert!(diags.is_empty(), "{vpath}: {diags:#?}");
        let (diags, _) = lint_source(vpath, &fixture("bad/thread_spawn.rs"));
        let hits = diags.iter().filter(|d| d.rule == "thread-spawn").count();
        assert_eq!(hits, 0, "{vpath}: {diags:#?}");
    }
    // ...while the simulation crates stay banned from both.
    let (diags, _) = lint_source(
        "crates/p2psim/src/fixture.rs",
        &fixture("bad/wall_clock.rs"),
    );
    assert_eq!(
        diags.iter().filter(|d| d.rule == "wall-clock").count(),
        2,
        "{diags:#?}"
    );
    let (diags, _) = lint_source(
        "crates/p2pclassify/src/fixture.rs",
        &fixture("bad/thread_spawn.rs"),
    );
    assert_eq!(
        diags.iter().filter(|d| d.rule == "thread-spawn").count(),
        2,
        "{diags:#?}"
    );
}

#[test]
fn documented_unsafe_fixture_has_full_inventory_coverage() {
    let (_, sites) = lint_source(
        "crates/textproc/src/fixture.rs",
        &fixture("ok/unsafe_documented.rs"),
    );
    assert_eq!(sites.len(), 2);
    assert!(sites.iter().all(|s| s.documented), "{sites:#?}");
    let (_, sites) = lint_source(
        "crates/textproc/src/fixture.rs",
        &fixture("bad/naked_unsafe.rs"),
    );
    assert_eq!(sites.len(), 2);
    assert!(sites.iter().all(|s| !s.documented), "{sites:#?}");
}
