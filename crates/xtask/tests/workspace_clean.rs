//! Tier-1 gate: `xtask lint` must be clean on the workspace, and every
//! `unsafe` site must be documented. This is the test that turns the
//! determinism/safety/wire invariants from review lore into CI failures.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean() {
    let report = xtask::lint::run(&workspace_root()).expect("lint walks the workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}): wrong root?",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unsafe_inventory_is_fully_documented() {
    let report = xtask::lint::run(&workspace_root()).expect("lint walks the workspace");
    let (documented, total) = report.unsafe_coverage();
    // The workspace currently has unsafe code (the CSR row kernels and the
    // counting allocator); if that ever drops to zero this assert should be
    // relaxed, not deleted.
    assert!(total >= 1, "expected at least one unsafe site");
    assert_eq!(
        documented,
        total,
        "undocumented unsafe sites:\n{}",
        report
            .unsafe_sites
            .iter()
            .filter(|s| !s.documented)
            .map(|s| format!("  {}:{}", s.file, s.line))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
