// Fixture: send Results discarded instead of tracked. Linted as if it lived
// under crates/p2pclassify/src/ — every lost send must feed a loss counter
// (or be explicitly allowed), otherwise the reliability story silently rots.

fn propagate(net: &mut Network, link: &mut ReliableLink, from: PeerId, to: PeerId, frame: &[u8]) {
    // The wildcard binding throws the Result away.
    let _ = net.send(from, to, MessageKind::ModelPropagation, frame.len());
    // So does a statement-level `.ok()`.
    net.send_frame(from, to, MessageKind::CentroidPropagation, frame)
        .ok();
    // The reliable link's sends are Results too.
    let _ = link.send_sized(net, from, to, MessageKind::AntiEntropy, frame.len());
}
