// Fixture: order-sensitive iteration over hash collections. Every
// iteration form below must be caught (method calls and for loops, on
// locals, params and fields).
use std::collections::{HashMap, HashSet};

struct Registry {
    models: HashMap<u64, f64>,
}

impl Registry {
    fn total(&self) -> f64 {
        // Float accumulation in hash order: nondeterministic bits.
        self.models.values().sum()
    }
}

fn entropy(counts: &HashMap<u64, usize>) -> f64 {
    let mut h = 0.0;
    for (_, &c) in counts.iter() {
        h -= (c as f64) * (c as f64).ln();
    }
    h
}

fn collect_ids(live: HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for id in &live {
        out.push(*id);
    }
    out
}

fn drain_all() -> Vec<(u64, f64)> {
    let mut m = HashMap::new();
    m.insert(1u64, 2.0f64);
    m.drain().collect()
}
