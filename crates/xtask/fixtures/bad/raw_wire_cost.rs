// Fixture: network sends charging raw integer literals instead of going
// through the WireCost/frame layer. Linted as if it lived under
// crates/p2pclassify/src/.

fn propagate(net: &mut Network, from: PeerId, to: PeerId) {
    // An invented cost: the E3 communication tables would silently lie.
    net.send(from, to, MessageKind::ModelPropagation, 4096).ok();
    // Arithmetic over literals is still an invented cost.
    let _ = net.send(from, to, MessageKind::CentroidPropagation, 64 * 128);
}
