// Fixture: RNG constructions that draw from entropy sources instead of an
// explicit seed. Replay determinism dies here.

fn seedless() -> f64 {
    let mut rng = rand::thread_rng();
    let _also_bad = StdRng::from_entropy();
    let _os = OsRng;
    rand::random::<f64>()
}
