// Fixture: unsafe without a SAFETY comment naming the proved invariant.

fn read_first(values: &[f64]) -> f64 {
    // This comment is not a SAFETY comment, so it does not count.
    unsafe { *values.get_unchecked(0) }
}

unsafe fn totally_undocumented(p: *const u8) -> u8 {
    *p
}
