// Fixture: ad-hoc concurrency outside vendor/parallel. Scheduling order
// would leak into results.

fn fan_out(items: Vec<u64>) -> u64 {
    let (tx, rx) = std::sync::mpsc::channel();
    for item in items {
        let tx = tx.clone();
        std::thread::spawn(move || tx.send(item * 2).unwrap());
    }
    drop(tx);
    rx.iter().sum()
}
