// Fixture: wall-clock reads outside crates/bench and the timing helper.
// Simulation code runs on virtual time; Instant::now here breaks replay.

fn measure() -> f64 {
    let t = std::time::Instant::now();
    let _epoch = std::time::SystemTime::now();
    t.elapsed().as_secs_f64()
}
