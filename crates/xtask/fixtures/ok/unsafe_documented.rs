// Fixture: unsafe with a SAFETY comment naming the proved invariant.

fn read_first(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    // SAFETY: the assert above proves index 0 is in bounds.
    unsafe { *values.get_unchecked(0) }
}

struct Wrapper;

// SAFETY: Wrapper holds no data; the trait has no invariant to violate.
#[allow(dead_code)]
unsafe impl Send for Wrapper {}
