// Fixture: hash iteration behind a justified allow, plus the compliant
// BTreeMap form. Both must lint clean.
use std::collections::{BTreeMap, HashMap};

fn count_total(counts: &HashMap<u64, usize>) -> usize {
    // lint: allow(hash-iter, reason = "integer sum, commutative and order-insensitive")
    counts.values().sum()
}

// Note: ident tracking is per-file, so this BTreeMap must not reuse the
// name `counts` the HashMap above is tracked under.
fn entropy(sorted: &BTreeMap<u64, usize>) -> f64 {
    let total: usize = sorted.values().sum();
    sorted
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}
