// Fixture: explicitly seeded RNG construction is the compliant form.

fn deterministic(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    rng.next_f64()
}
