// Fixture: send Results consumed, propagated or explicitly allowed — all
// lint clean under the send-unchecked rule, even inside crates/p2pclassify.

fn propagate(
    net: &mut Network,
    link: &mut ReliableLink,
    from: PeerId,
    to: PeerId,
    frame: &[u8],
) -> Result<(), DeliveryError> {
    // Propagated to the caller.
    net.send(from, to, MessageKind::ModelPropagation, frame.len())?;
    // Consumed: the error arm feeds a loss counter.
    if net
        .send_frame(from, to, MessageKind::CentroidPropagation, frame)
        .is_err()
    {
        mark_lost(to);
    }
    // `.ok()` as an adapter (not a statement) keeps the value alive.
    let delivered = link
        .send_sized(net, from, to, MessageKind::AntiEntropy, frame.len())
        .ok();
    record(delivered);
    // A reasoned allow is the audited escape hatch.
    // lint: allow(send-unchecked, reason = "best-effort hint; loss is benign and counted upstream")
    let _ = net.send(from, to, MessageKind::PredictionResponse, frame.len());
    Ok(())
}
