// Fixture: sends that charge measured frame lengths (or estimator output)
// lint clean under the wire-discipline rule, even inside p2pclassify.

fn propagate(net: &mut Network, from: PeerId, to: PeerId, model: &Model) {
    let frame = encode_model(model);
    net.send(from, to, MessageKind::ModelPropagation, frame.len() as u64)
        .ok();
    let estimate = model.wire_size();
    let _ = net.send(from, to, MessageKind::CentroidPropagation, estimate);
}
