// Fixture: sends that charge measured frame lengths (or estimator output)
// lint clean under the wire-discipline rule, even inside p2pclassify. The
// Results are consumed so the send-unchecked rule stays quiet too.

fn propagate(net: &mut Network, from: PeerId, to: PeerId, model: &Model) -> Result<(), Error> {
    let frame = encode_model(model);
    net.send(from, to, MessageKind::ModelPropagation, frame.len() as u64)?;
    let estimate = model.wire_size();
    if net
        .send(from, to, MessageKind::CentroidPropagation, estimate)
        .is_err()
    {
        mark_lost(to);
    }
    Ok(())
}
