// Fixture: a wall-clock read annotated with a justified allow lints clean.

fn measure() -> f64 {
    // lint: allow(wall-clock, reason = "one-off diagnostic print, never feeds sim state")
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}
