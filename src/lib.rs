//! # p2pdoctagger — facade crate
//!
//! A from-scratch Rust reproduction of **"P2PDocTagger: Content management
//! through automated P2P collaborative tagging"** (Ang, Gopalkrishnan, Ng,
//! Hoi — PVLDB 3(2), VLDB 2010 demo).
//!
//! This crate simply re-exports the workspace crates so examples, integration
//! tests and downstream users can depend on a single name:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`textproc`] | `textproc` | document preprocessing (tokenizer, stop words, Porter stemmer, TF-IDF sparse vectors) |
//! | [`ml`] | `ml` | SVMs (linear, kernel, cascade), k-means, LSH, one-vs-all multi-label reduction, metrics |
//! | [`p2psim`] | `p2psim` | P2PDMT: discrete-event simulator, Chord DHT / unstructured overlays, churn, data distribution, statistics |
//! | [`p2pclassify`] | `p2pclassify` | CEMPaR, PACE and the centralized / local-only baselines |
//! | [`dataset`] | `dataset` | synthetic delicious-like multi-label corpus (substitute for the Wetzker et al. crawl) |
//! | [`doctagger`] | `doctagger` | the P2PDocTagger system: library, tag store, suggestion cloud, tag cloud, refinement |
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.
//!
//! ```
//! use p2pdoctagger::prelude::*;
//!
//! let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
//! let split = TrainTestSplit::demo_protocol(&corpus, 1);
//! let mut system = P2PDocTagger::new(DocTaggerConfig::default());
//! system.ingest(&corpus);
//! system.learn(&split).unwrap();
//! let outcome = system.auto_tag_all().unwrap();
//! assert!(outcome.tagged > 0);
//! ```

#![warn(missing_docs)]

pub use dataset;
pub use doctagger;
pub use ml;
pub use p2pclassify;
pub use p2psim;
pub use textproc;

/// One-stop imports for the most common workflow.
pub mod prelude {
    pub use dataset::{
        ArrivalSpec, ArrivalTimeline, BurstSpec, CommunitySpec, Corpus, CorpusGenerator,
        CorpusSpec, SpecError, TrainTestSplit, VectorizedCorpus,
    };
    pub use doctagger::{
        AutoTagOutcome, DocTaggerConfig, DocumentLibrary, P2PDocTagger, ProtocolKind,
        SuggestionCloud, TagCloud, TagStore,
    };
    pub use ml::prelude::*;
    pub use p2pclassify::prelude::*;
    pub use p2psim::prelude::*;
    pub use textproc::prelude::*;
}
