//! Cross-crate integration tests: corpus generation → preprocessing → P2P
//! collaborative learning → automatic tagging → evaluation, for every
//! pluggable protocol.

use p2pdoctagger::prelude::*;

fn corpus_and_split(seed: u64) -> (Corpus, TrainTestSplit) {
    let corpus = CorpusGenerator::new(CorpusSpec {
        num_tags: 6,
        num_users: 10,
        min_docs_per_user: 14,
        max_docs_per_user: 22,
        seed,
        ..CorpusSpec::tiny()
    })
    .generate();
    let split = TrainTestSplit::demo_protocol(&corpus, seed);
    (corpus, split)
}

fn run_protocol(protocol: ProtocolKind, seed: u64) -> (AutoTagOutcome, u64) {
    let (corpus, split) = corpus_and_split(seed);
    let mut system = P2PDocTagger::new(DocTaggerConfig {
        protocol,
        ..DocTaggerConfig::default()
    });
    system.ingest(&corpus);
    system.learn(&split).expect("learning succeeds");
    let outcome = system.auto_tag_all().expect("auto tagging succeeds");
    (outcome, system.network_stats().total_bytes())
}

#[test]
fn every_protocol_beats_random_guessing() {
    for protocol in [
        ProtocolKind::pace(),
        ProtocolKind::Cempar(CemparConfig::for_network(10)),
        ProtocolKind::centralized(),
        ProtocolKind::local_only(),
    ] {
        let name = protocol.name();
        let (outcome, _) = run_protocol(protocol, 21);
        // Random tag assignment over 6 tags with ~2 true tags per document has
        // micro-F1 around 0.33; every learned protocol must clear it.
        assert!(
            outcome.metrics.micro_f1() > 0.4,
            "{name}: micro-F1 {:.3}",
            outcome.metrics.micro_f1()
        );
        assert_eq!(outcome.failed, 0, "{name}: no failures without churn");
    }
}

#[test]
fn collaborative_protocols_beat_the_local_baseline() {
    // A single tiny corpus is noisy, so compare mean micro-F1 over a few seeds
    // (the paper-scale comparison lives in the experiment harness, E1).
    let seeds = [22u64, 122, 222];
    let mean = |protocol_for: &dyn Fn() -> ProtocolKind| -> f64 {
        seeds
            .iter()
            .map(|&s| run_protocol(protocol_for(), s).0.metrics.micro_f1())
            .sum::<f64>()
            / seeds.len() as f64
    };
    let local = mean(&ProtocolKind::local_only);
    let pace = mean(&ProtocolKind::pace);
    let cempar = mean(&|| ProtocolKind::Cempar(CemparConfig::for_network(10)));
    assert!(pace > local, "pace {pace:.3} vs local {local:.3}");
    assert!(cempar > local, "cempar {cempar:.3} vs local {local:.3}");
}

#[test]
fn centralized_is_the_accuracy_upper_bound() {
    let (central, _) = run_protocol(ProtocolKind::centralized(), 23);
    let (pace, _) = run_protocol(ProtocolKind::pace(), 23);
    let (local, _) = run_protocol(ProtocolKind::local_only(), 23);
    assert!(central.metrics.micro_f1() >= pace.metrics.micro_f1() - 0.02);
    assert!(central.metrics.micro_f1() > local.metrics.micro_f1());
}

#[test]
fn p2p_protocols_never_ship_raw_training_data() {
    let (corpus, split) = corpus_and_split(24);
    for protocol in [
        ProtocolKind::pace(),
        ProtocolKind::Cempar(CemparConfig::for_network(10)),
    ] {
        let mut system = P2PDocTagger::new(DocTaggerConfig {
            protocol,
            ..DocTaggerConfig::default()
        });
        system.ingest(&corpus);
        system.learn(&split).unwrap();
        system.auto_tag_all().unwrap();
        let stats = system.network_stats();
        assert_eq!(
            stats.kind(MessageKind::TrainingData).messages,
            0,
            "P2P protocols must not centralize raw document vectors"
        );
        assert!(stats.kind(MessageKind::ModelPropagation).messages > 0);
    }
}

#[test]
fn local_baseline_uses_no_network_at_all() {
    let (_, bytes) = run_protocol(ProtocolKind::local_only(), 25);
    assert_eq!(bytes, 0);
}

#[test]
fn tag_cloud_and_store_are_consistent_with_the_library() {
    let (corpus, split) = corpus_and_split(26);
    let mut system = P2PDocTagger::new(DocTaggerConfig::default());
    system.ingest(&corpus);
    system.learn(&split).unwrap();
    system.auto_tag_all().unwrap();

    // Every library entry has a matching tag-store record with the same tags.
    for entry in system.library().iter() {
        let path = P2PDocTagger::path_of(entry.doc, entry.user);
        assert_eq!(
            system.tag_store().tags_of(&path),
            entry.tags,
            "doc {}",
            entry.doc
        );
    }
    // The tag cloud counts agree with the library counts.
    let cloud = system.tag_cloud();
    let counts = system.library().tag_counts();
    for e in cloud.entries() {
        assert_eq!(counts[&e.tag], e.count);
    }
}

#[test]
fn suggestions_contain_the_predicted_tags() {
    let (corpus, split) = corpus_and_split(27);
    let mut system = P2PDocTagger::new(DocTaggerConfig::default());
    system.ingest(&corpus);
    system.learn(&split).unwrap();
    let doc = split.test[3];
    let assigned = system.auto_tag(doc).unwrap();
    let cloud = system.suggest(doc, Some(0.0)).unwrap();
    let suggested: std::collections::BTreeSet<String> = cloud.accepted_tags().into_iter().collect();
    for tag in &assigned {
        assert!(
            suggested.contains(tag),
            "assigned tag {tag} missing from suggestions {suggested:?}"
        );
    }
}

#[test]
fn refinement_improves_future_tagging() {
    // Train PACE with a deliberately small training fraction, then simulate
    // users correcting a batch of auto-tagged documents; accuracy on the
    // remaining documents must not degrade and typically improves.
    let corpus = CorpusGenerator::new(CorpusSpec {
        num_tags: 6,
        num_users: 10,
        min_docs_per_user: 16,
        max_docs_per_user: 24,
        seed: 28,
        ..CorpusSpec::tiny()
    })
    .generate();
    let split = TrainTestSplit::stratified_by_user(&corpus, 0.1, 28);
    let mut system = P2PDocTagger::new(DocTaggerConfig::default());
    system.ingest(&corpus);
    system.learn(&split).unwrap();
    let before = system.auto_tag_all().unwrap();

    // Users correct the first 30 test documents with their true tags.
    for &doc in split.test.iter().take(30) {
        let truth = corpus.document(doc).unwrap().tags.clone();
        system.refine(doc, truth).unwrap();
    }
    let after = system.auto_tag_all().unwrap();
    assert!(
        after.metrics.micro_f1() >= before.metrics.micro_f1() - 0.01,
        "refinement must not hurt: before {:.3}, after {:.3}",
        before.metrics.micro_f1(),
        after.metrics.micro_f1()
    );
    assert_eq!(system.refinements().len(), 30);
}
