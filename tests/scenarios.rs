//! Tier-1 scenario regression harness: the orderings the adversarial-workload
//! suite is designed to guard, pinned at unit-test scale.
//!
//! The `scenarios` bench bin sweeps the full matrix at demo scale and asserts
//! the same orderings on the captured `BENCH_scenarios.json`; this test keeps
//! the core claims cheap enough to run on every `cargo test`:
//!
//! 1. Under a skewed tag-popularity regime, the collaborative protocols keep
//!    their edge over isolated per-peer learning on the *tail* of the
//!    popularity ranking — the paper's central claim, sharpened to where
//!    isolation hurts most.
//! 2. No scenario knob leaks into the benign baseline: the benign scenario
//!    must reproduce the standard workload bit-for-bit and stay healthy.

use bench::scenarios::{cold_peer_count, measure_scenario, to_json, validate_json};
use bench::workload::{Scale, ScenarioSpec};

const USERS: usize = 10;
const EPOCHS: usize = 3;
const SEED: u64 = 2010;

#[test]
fn collaborative_beats_local_only_on_tail_tags_under_skew() {
    let scenario = ScenarioSpec::named("zipf-heavy").expect("scenario exists");
    assert!(scenario.is_skewed());
    let row = measure_scenario(&scenario, USERS, Scale::Small, EPOCHS, SEED);
    let cempar = row.cell("cempar").expect("cempar cell");
    let pace = row.cell("pace").expect("pace cell");
    let local = row.cell("local-only").expect("local-only cell");
    // The tail stratum must be non-trivial for the comparison to mean much.
    assert!(cempar.tail_tags >= 2, "tail has {} tags", cempar.tail_tags);
    // The pinned ordering: the best collaborative protocol holds the tail.
    let collaborative = cempar.tail_macro_f1.max(pace.tail_macro_f1);
    assert!(
        collaborative >= local.tail_macro_f1,
        "collaborative tail-tag F1 {:.3} below local-only {:.3} under skew",
        collaborative,
        local.tail_macro_f1
    );
    // Cold-start peers benefit from collaboration too: the peers with the
    // fewest manual taggings lean hardest on their neighbours' knowledge.
    let collaborative_cold = cempar.cold_start_macro_f1.max(pace.cold_start_macro_f1);
    assert!(
        collaborative_cold >= local.cold_start_macro_f1,
        "collaborative cold-start F1 {:.3} below local-only {:.3} under skew",
        collaborative_cold,
        local.cold_start_macro_f1
    );
}

#[test]
fn no_scenario_knob_regresses_the_benign_baseline() {
    let benign = ScenarioSpec::benign();
    let row = measure_scenario(&benign, USERS, Scale::Small, EPOCHS, SEED);
    // The benign scenario must stay healthy for every protocol: the skew
    // machinery is all behind `Option`/zero knobs and consumes no randomness
    // when disabled, so a drop here means a knob leaked into the default path.
    for cell in &row.cells {
        assert!(
            cell.macro_f1 > 0.4,
            "benign macro-F1 collapsed to {:.3} for {}",
            cell.macro_f1,
            cell.protocol
        );
    }
    let cempar = row.cell("cempar").expect("cempar cell");
    let local = row.cell("local-only").expect("local-only cell");
    assert!(cempar.macro_f1 >= local.macro_f1);
    // And the benign corpus really is the pre-scenario workload.
    assert_eq!(
        benign.corpus_spec(USERS, Scale::Small, SEED),
        bench::workload::corpus_spec(USERS, Scale::Small, SEED)
    );
}

#[test]
fn scenario_matrix_rows_render_as_valid_json() {
    let scenario = ScenarioSpec::named("combined").expect("scenario exists");
    assert!(scenario.is_skewed());
    let row = measure_scenario(&scenario, 6, Scale::Small, 2, SEED);
    assert_eq!(row.cells.len(), 4);
    assert_eq!(row.cold_peers, cold_peer_count(6));
    let json = to_json(&[row], 2, SEED);
    validate_json(&json).expect("scenario json validates");
    for key in [
        "\"scenario\"",
        "\"head_macro_f1\"",
        "\"tail_macro_f1\"",
        "\"cold_start_macro_f1\"",
        "\"skewed\": true",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
