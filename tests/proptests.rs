//! Property-based tests over the core data structures and invariants,
//! spanning the preprocessing, learning and overlay substrates.

use p2pdoctagger::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// A tiny corpus shared by the arrival-timeline properties (generation is the
/// expensive part; the properties vary only the arrival spec).
fn arrival_corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        CorpusGenerator::new(CorpusSpec {
            num_users: 6,
            seed: 99,
            ..CorpusSpec::tiny()
        })
        .generate()
    })
}

/// A tiny corpus spec with the adversarial knobs applied.
fn skewed_spec(imitation: f64, communities: Option<CommunitySpec>, seed: u64) -> CorpusSpec {
    CorpusSpec {
        num_users: 6,
        imitation,
        communities,
        seed,
        ..CorpusSpec::tiny()
    }
}

fn sparse_vector_strategy(max_dim: u32, max_nnz: usize) -> impl Strategy<Value = SparseVector> {
    prop::collection::vec((0..max_dim, -10.0f64..10.0), 0..max_nnz)
        .prop_map(SparseVector::from_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- sparse vectors -------------------------------------------------

    #[test]
    fn sparse_indices_are_sorted_and_unique(v in sparse_vector_strategy(200, 40)) {
        let idx = v.indices();
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(v.values().iter().all(|&x| x != 0.0));
    }

    #[test]
    fn dot_product_is_symmetric_and_bounded_by_norms(
        a in sparse_vector_strategy(100, 30),
        b in sparse_vector_strategy(100, 30),
    ) {
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-9);
        // Cauchy-Schwarz.
        prop_assert!(a.dot(&b).abs() <= a.norm() * b.norm() + 1e-9);
    }

    #[test]
    fn add_then_sub_roundtrips(
        a in sparse_vector_strategy(100, 30),
        b in sparse_vector_strategy(100, 30),
    ) {
        let roundtrip = a.add(&b).sub(&b);
        // Compare as dense vectors with tolerance (floating point).
        let dim = roundtrip.dim_lower_bound().max(a.dim_lower_bound());
        let lhs = roundtrip.to_dense(dim);
        let rhs = a.to_dense(dim);
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn l2_normalization_yields_unit_norm(v in sparse_vector_strategy(100, 30)) {
        let mut v = v;
        if !v.is_empty() {
            v.l2_normalize();
            prop_assert!((v.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn distance_satisfies_triangle_inequality(
        a in sparse_vector_strategy(50, 20),
        b in sparse_vector_strategy(50, 20),
        c in sparse_vector_strategy(50, 20),
    ) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    // ---------- preprocessing --------------------------------------------------

    #[test]
    fn stemmer_output_is_never_longer_and_is_ascii_for_ascii_input(
        word in "[a-z]{1,20}",
    ) {
        let stemmer = PorterStemmer::new();
        let stem = stemmer.stem(&word);
        prop_assert!(stem.len() <= word.len());
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn tokenizer_output_obeys_length_and_charset_rules(text in ".{0,200}") {
        let tokenizer = Tokenizer::default();
        for token in tokenizer.tokenize(&text) {
            let n = token.chars().count();
            prop_assert!(n >= tokenizer.min_len && n <= tokenizer.max_len);
            prop_assert!(token.chars().all(|c| c.is_alphanumeric()));
            prop_assert!(!token.chars().any(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn pipeline_vectors_are_deterministic(docs in prop::collection::vec("[a-z ]{10,80}", 2..6)) {
        let run = |docs: &[String]| {
            let mut p = PreprocessPipeline::new();
            p.fit_transform(docs.iter().map(String::as_str))
        };
        prop_assert_eq!(run(&docs), run(&docs));
    }

    // ---------- parallel execution layer ---------------------------------------

    #[test]
    fn par_map_equals_sequential_map(
        items in prop::collection::vec((0u32..1000, -5.0f64..5.0), 0..120),
    ) {
        // The ordered reduction contract: par_map output is index-ordered and
        // therefore identical (bitwise, for the float payloads) to map.
        let f = |&(k, v): &(u32, f64)| (k.wrapping_mul(2654435761), (v * 1.5).sin());
        let sequential: Vec<(u32, f64)> = items.iter().map(f).collect();
        let parallel_out = parallel::par_map(&items, f);
        prop_assert_eq!(sequential.len(), parallel_out.len());
        for (s, p) in sequential.iter().zip(&parallel_out) {
            prop_assert_eq!(s.0, p.0);
            prop_assert_eq!(s.1.to_bits(), p.1.to_bits());
        }
    }

    #[test]
    fn par_chunks_covers_input_in_order(
        items in prop::collection::vec(0u64..10_000, 1..200),
        chunk in 1usize..32,
    ) {
        let chunks = parallel::par_chunks(&items, chunk, |i, c| (i, c.to_vec()));
        let reassembled: Vec<u64> = chunks.iter().flat_map(|(_, c)| c.iter().copied()).collect();
        prop_assert_eq!(&reassembled, &items);
        for (expect, (idx, _)) in chunks.iter().enumerate() {
            prop_assert_eq!(expect, *idx);
        }
    }

    // ---------- vocabulary -----------------------------------------------------

    #[test]
    fn vocabulary_ids_roundtrip(words in prop::collection::vec("[a-z]{1,8}", 1..50)) {
        let mut vocab = Vocabulary::new();
        for w in &words {
            vocab.get_or_insert(w);
        }
        for w in &words {
            let id = vocab.id_of(w).expect("inserted word has an id");
            prop_assert_eq!(vocab.word_of(id), Some(w.as_str()));
        }
        prop_assert!(vocab.len() <= words.len());
    }

    // ---------- overlay --------------------------------------------------------

    #[test]
    fn chord_lookup_agrees_with_brute_force_owner(
        num_peers in 2u64..80,
        keys in prop::collection::vec(any::<u64>(), 1..20),
        from in any::<u64>(),
    ) {
        let overlay = ChordOverlay::with_peers((0..num_peers).map(PeerId));
        let source = PeerId(from % num_peers);
        for key in keys {
            let result = overlay.lookup(source, key).expect("lookup succeeds");
            // Brute force: smallest ring key >= key, else global minimum.
            let mut ring: Vec<(u64, PeerId)> = (0..num_peers)
                .map(|i| (PeerId(i).ring_key(), PeerId(i)))
                .collect();
            ring.sort_unstable();
            let expected = ring
                .iter()
                .find(|&&(k, _)| k >= key)
                .or_else(|| ring.first())
                .map(|&(_, p)| p)
                .unwrap();
            prop_assert_eq!(result.owner, expected);
            prop_assert!(result.hops() <= num_peers as usize);
        }
    }

    #[test]
    fn super_peer_election_is_stable_and_member_only(
        num_peers in 2u64..60,
        regions in 1usize..12,
    ) {
        let overlay = ChordOverlay::with_peers((0..num_peers).map(PeerId));
        let dir = SuperPeerDirectory::new(regions);
        let elected = dir.elect(&overlay);
        prop_assert_eq!(elected.len(), regions.max(1));
        for sp in elected {
            prop_assert!(overlay.contains(sp));
        }
    }

    // ---------- metrics --------------------------------------------------------

    #[test]
    fn multilabel_metrics_are_bounded(
        sets in prop::collection::vec(
            (prop::collection::btree_set(0u32..8, 0..4), prop::collection::btree_set(0u32..8, 0..4)),
            1..30,
        ),
    ) {
        let predictions: Vec<BTreeSet<u32>> = sets.iter().map(|(p, _)| p.clone()).collect();
        let truths: Vec<BTreeSet<u32>> = sets.iter().map(|(_, t)| t.clone()).collect();
        let universe: BTreeSet<u32> = (0..8).collect();
        let m = MultiLabelMetrics::evaluate(&predictions, &truths, &universe);
        for value in [m.micro_f1(), m.macro_f1(), m.hamming_loss(), m.subset_accuracy()] {
            prop_assert!((0.0..=1.0).contains(&value), "metric out of range: {value}");
        }
        // Perfect prediction of itself is always perfect.
        let perfect = MultiLabelMetrics::evaluate(&truths, &truths, &universe);
        prop_assert_eq!(perfect.micro_f1(), 1.0);
    }

    // ---------- churn ----------------------------------------------------------

    #[test]
    fn churn_timeline_intervals_are_consistent_with_events(
        mean_session in 10.0f64..500.0,
        mean_offline in 10.0f64..500.0,
        peers in 1usize..20,
    ) {
        let model = ChurnModel::Exponential {
            mean_session_secs: mean_session,
            mean_offline_secs: mean_offline,
        };
        let horizon = SimTime::from_secs(2_000);
        let tl = ChurnTimeline::generate(model, peers, horizon, 7);
        let events = tl.events();
        for w in events.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        // Just after a join event the peer is online; just after a leave it is not.
        for e in events.iter().take(50) {
            let probe = SimTime::from_micros(e.time.as_micros().saturating_add(1));
            if probe < horizon {
                prop_assert_eq!(tl.is_online(e.peer, probe), e.online);
            }
        }
        prop_assert!((0.0..=1.0).contains(&tl.availability_at(SimTime::from_secs(1_000))));
    }

    // ---------- adversarial workload generators ---------------------------------

    #[test]
    fn bursty_arrivals_stay_sorted_and_inside_the_horizon(
        num_bursts in 1usize..5,
        width_secs in 10.0f64..500.0,
        attraction in 0.05f64..1.0,
        horizon_secs in 200.0f64..3_000.0,
        seed in any::<u64>(),
    ) {
        let corpus = arrival_corpus();
        let spec = ArrivalSpec {
            horizon_secs,
            bursts: Some(BurstSpec { num_bursts, width_secs, attraction }),
            seed,
            ..ArrivalSpec::default()
        };
        let timeline = ArrivalTimeline::generate(corpus, &spec);
        let arrivals = timeline.arrivals();
        // Exactly one arrival per document, every document covered.
        prop_assert_eq!(arrivals.len(), corpus.len());
        let docs: BTreeSet<_> = arrivals.iter().map(|a| a.doc).collect();
        prop_assert_eq!(docs.len(), corpus.len());
        // Sorted, and strictly inside [0, horizon).
        let horizon_micros = (horizon_secs * 1e6) as u64;
        for w in arrivals.windows(2) {
            prop_assert!(w[0].time_micros <= w[1].time_micros);
        }
        for a in arrivals {
            prop_assert!(a.time_micros < horizon_micros);
        }
    }

    #[test]
    fn arrival_replay_is_deterministic_for_any_seed(
        seed in any::<u64>(),
        num_bursts in 1usize..4,
    ) {
        let corpus = arrival_corpus();
        let spec = ArrivalSpec {
            bursts: Some(BurstSpec { num_bursts, ..BurstSpec::default() }),
            seed,
            ..ArrivalSpec::default()
        };
        let a = ArrivalTimeline::generate(corpus, &spec);
        let b = ArrivalTimeline::generate(corpus, &spec);
        prop_assert_eq!(a.arrivals(), b.arrivals());
    }

    #[test]
    fn imitation_keeps_every_tag_set_valid(
        imitation in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let spec = skewed_spec(imitation, None, seed);
        let corpus = CorpusGenerator::new(spec.clone()).generate();
        for doc in corpus.documents() {
            // Every document keeps at least one tag, never exceeds the cap,
            // and every tag stays inside the declared universe.
            prop_assert!(!doc.tags.is_empty());
            prop_assert!(doc.tags.len() <= spec.max_tags_per_doc);
            let ids = corpus.tag_ids_of(doc.id);
            prop_assert_eq!(ids.len(), doc.tags.len());
            for &t in &ids {
                prop_assert!((t as usize) < spec.num_tags);
            }
        }
    }

    #[test]
    fn community_membership_covers_all_users_and_tags(
        num_communities in 1usize..9,
        tag_overlap in 0.0f64..1.0,
        cross in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let spec = skewed_spec(
            0.0,
            Some(CommunitySpec {
                num_communities,
                tag_overlap,
                cross_community_ratio: cross,
            }),
            seed,
        );
        let gen = CorpusGenerator::new(spec.clone());
        let members = gen.community_assignments().expect("communities configured");
        // Every user is assigned to a community in range.
        prop_assert_eq!(members.len(), spec.num_users);
        let k = num_communities.min(spec.num_users).max(1);
        for &c in &members {
            prop_assert!(c < k);
        }
        // Round-robin assignment covers every community.
        let used: BTreeSet<_> = members.iter().copied().collect();
        prop_assert_eq!(used.len(), k);
        // The community pools jointly cover the whole tag universe.
        let pools = gen.community_tag_pools().expect("communities configured");
        let covered: BTreeSet<usize> = pools.iter().flatten().copied().collect();
        prop_assert_eq!(covered.len(), spec.num_tags);
        // And generation under these knobs still yields a corpus whose tags
        // stay inside the universe.
        let corpus = gen.generate();
        for doc in corpus.documents() {
            prop_assert!(!doc.tags.is_empty());
            for &t in &corpus.tag_ids_of(doc.id) {
                prop_assert!((t as usize) < spec.num_tags);
            }
        }
    }

    // ---------- learning sanity -------------------------------------------------

    #[test]
    fn linear_svm_always_separates_two_distant_points(
        a in 0.5f64..3.0,
        b in -3.0f64..-0.5,
    ) {
        let xs = vec![
            SparseVector::from_pairs([(0u32, a)]),
            SparseVector::from_pairs([(0u32, b)]),
        ];
        let ys = vec![true, false];
        let model = LinearSvmTrainer::default().train(&xs, &ys);
        prop_assert!(model.predict(&xs[0]));
        prop_assert!(!model.predict(&xs[1]));
    }
}
