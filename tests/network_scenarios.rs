//! Integration tests for the P2P environment scenarios the demonstration
//! varies: overlay topology, churn rate, network size and per-peer data
//! distribution.

use p2pdoctagger::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds simple per-peer toy datasets (two separable tags) for protocol-level
/// scenarios where the full text pipeline is unnecessary.
fn toy_peer_data(num_peers: usize, per_peer: usize, seed: u64) -> Vec<MultiLabelDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_peers)
        .map(|_| {
            let mut ds = MultiLabelDataset::new();
            for _ in 0..per_peer {
                let a = 0.8 + rng.gen_range(0.0..0.4);
                if rng.gen_bool(0.5) {
                    ds.push(MultiLabelExample::new(
                        SparseVector::from_pairs([(0, a)]),
                        [1],
                    ));
                } else {
                    ds.push(MultiLabelExample::new(
                        SparseVector::from_pairs([(1, a)]),
                        [2],
                    ));
                }
            }
            ds
        })
        .collect()
}

#[test]
fn structured_overlay_routes_in_fewer_messages_than_flooding() {
    let mut chord = P2PNetwork::new(SimConfig {
        num_peers: 256,
        overlay: OverlayKind::Chord,
        ..Default::default()
    });
    let mut flood = P2PNetwork::new(SimConfig {
        num_peers: 256,
        overlay: OverlayKind::Unstructured { degree: 6, ttl: 6 },
        ..Default::default()
    });
    let mut chord_failures = 0;
    let mut flood_failures = 0;
    for i in 0..100u64 {
        let key = p2psim::peer::content_key(&i.to_le_bytes());
        let from = PeerId(i % 256);
        if chord.dht_lookup(from, key).is_err() {
            chord_failures += 1;
        }
        if flood.dht_lookup(from, key).is_err() {
            flood_failures += 1;
        }
    }
    assert_eq!(chord_failures, 0, "DHT lookups are deterministic");
    assert!(
        flood_failures <= 20,
        "flooding may occasionally fail, not often"
    );
    let chord_msgs = chord.stats().kind(MessageKind::DhtLookup).messages;
    let flood_msgs = flood.stats().kind(MessageKind::DhtLookup).messages;
    assert!(
        flood_msgs > 2 * chord_msgs,
        "flooding ({flood_msgs} msgs) should cost well more than DHT routing ({chord_msgs} msgs)"
    );
}

#[test]
fn accuracy_holds_as_the_network_grows() {
    // The paper claims P2PDocTagger "scales well even in the presence of …
    // large number of peers": accuracy must not collapse when the same total
    // amount of training data is spread over 4x more peers.
    for &num_peers in &[8usize, 32] {
        let data = toy_peer_data(num_peers, 160 / num_peers, 31);
        let mut net = P2PNetwork::new(SimConfig::with_peers(num_peers));
        let mut pace = Pace::new(PaceConfig::default());
        pace.train(&mut net, &data).unwrap();
        let mut correct = 0;
        let total = 50;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..total {
            let tag: u32 = if rng.gen_bool(0.5) { 1 } else { 2 };
            let x = SparseVector::from_pairs([((tag - 1), 1.0 + rng.gen_range(0.0..0.3))]);
            let pred = pace.predict(&mut net, PeerId(0), &x).unwrap();
            if pred.contains(&tag) {
                correct += 1;
            }
        }
        assert!(
            correct >= 45,
            "{num_peers} peers: only {correct}/{total} correct"
        );
    }
}

#[test]
fn per_peer_communication_stays_bounded_as_the_network_grows() {
    // CEMPaR's per-peer training cost (one model propagation to a super-peer)
    // must not grow linearly with the network size.
    let mut per_peer_bytes = Vec::new();
    for &num_peers in &[16usize, 64] {
        let data = toy_peer_data(num_peers, 8, 33);
        let mut net = P2PNetwork::new(SimConfig::with_peers(num_peers));
        let mut cempar = Cempar::new(CemparConfig::for_network(num_peers));
        cempar.train(&mut net, &data).unwrap();
        per_peer_bytes.push(net.stats().total_bytes() as f64 / num_peers as f64);
    }
    let growth = per_peer_bytes[1] / per_peer_bytes[0];
    assert!(
        growth < 2.0,
        "per-peer training bytes grew {growth:.2}x when the network grew 4x"
    );
}

#[test]
fn heavy_churn_hurts_the_centralized_baseline_most() {
    let num_peers = 32;
    let sim = SimConfig {
        num_peers,
        churn: ChurnModel::Exponential {
            mean_session_secs: 500.0,
            mean_offline_secs: 500.0,
        },
        horizon_secs: 1_000_000,
        seed: 11,
        ..Default::default()
    };
    let data = toy_peer_data(num_peers, 8, 34);

    let mut pace_net = P2PNetwork::new(sim.clone());
    let mut pace = Pace::new(PaceConfig::default());
    pace.train(&mut pace_net, &data).unwrap();

    let mut central_net = P2PNetwork::new(sim.clone());
    let mut central = Centralized::new(CentralizedConfig::default());
    central.train(&mut central_net, &data).unwrap();

    let probe = SparseVector::from_pairs([(0, 1.0)]);
    let mut pace_failures = 0;
    let mut central_failures = 0;
    let mut attempts = 0;
    for step in 0..40 {
        pace_net.advance(SimTime::from_secs(1_000));
        central_net.advance(SimTime::from_secs(1_000));
        let requester = PeerId((step % num_peers) as u64);
        if !pace_net.is_online(requester) || !central_net.is_online(requester) {
            continue;
        }
        attempts += 1;
        if pace.predict(&mut pace_net, requester, &probe).is_err() {
            pace_failures += 1;
        }
        if central
            .predict(&mut central_net, requester, &probe)
            .is_err()
        {
            central_failures += 1;
        }
    }
    assert!(attempts >= 10, "enough online requesters sampled");
    assert!(
        central_failures > pace_failures,
        "centralized failures ({central_failures}) should exceed PACE failures ({pace_failures}) over {attempts} attempts"
    );
    assert_eq!(pace_failures, 0, "PACE predictions are fully local");
}

#[test]
fn skewed_data_distribution_is_generated_and_learnable() {
    // E6 substrate: distributing one corpus with uniform vs Zipf sizes and
    // IID vs label-skewed classes produces the intended statistics.
    let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
    let labels: Vec<u64> = corpus
        .documents()
        .iter()
        .map(|d| corpus.tag_ids_of(d.id).into_iter().next().unwrap_or(0) as u64)
        .collect();

    let uniform = DataDistributor {
        size: SizeDistribution::Uniform,
        class: ClassDistribution::Iid,
        seed: 5,
    }
    .distribute(&labels, 16);
    let skewed = DataDistributor {
        size: SizeDistribution::Zipf { exponent: 1.2 },
        class: ClassDistribution::LabelSkewed {
            concentration: 0.8,
            home_peers: 2,
        },
        seed: 5,
    }
    .distribute(&labels, 16);

    assert!(p2psim::datadist::size_gini(&skewed) > p2psim::datadist::size_gini(&uniform));
    assert!(
        p2psim::datadist::label_entropy_ratio(&skewed, &labels)
            < p2psim::datadist::label_entropy_ratio(&uniform, &labels)
    );
    let total: usize = skewed.iter().map(Vec::len).sum();
    assert_eq!(total, corpus.len());
}
