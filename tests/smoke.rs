//! Smoke test: the exact five-line workflow advertised by the README
//! quickstart and the `p2pdoctagger` crate-level doctest. If this breaks, the
//! front door of the project is broken regardless of what the deeper
//! integration tests say.

use p2pdoctagger::prelude::*;

#[test]
fn readme_quickstart_workflow_tags_documents() {
    let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
    let split = TrainTestSplit::demo_protocol(&corpus, 1);

    let mut system = P2PDocTagger::new(DocTaggerConfig::default());
    system.ingest(&corpus);
    system.learn(&split).unwrap();
    let outcome = system.auto_tag_all().unwrap();

    assert!(outcome.tagged > 0, "quickstart tagged no documents");
    assert_eq!(
        outcome.tagged + outcome.failed,
        split.test.len(),
        "every untagged document must be attempted"
    );
    assert!(
        outcome.metrics.micro_f1() > 0.3,
        "quickstart accuracy collapsed: micro-F1 {}",
        outcome.metrics.micro_f1()
    );
}

#[test]
fn quickstart_workflow_is_deterministic() {
    let run = || {
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let split = TrainTestSplit::demo_protocol(&corpus, 1);
        let mut system = P2PDocTagger::new(DocTaggerConfig::default());
        system.ingest(&corpus);
        system.learn(&split).unwrap();
        let outcome = system.auto_tag_all().unwrap();
        (outcome.tagged, outcome.metrics.micro_f1())
    };
    assert_eq!(run(), run(), "same seeds must give the same outcome");
}
